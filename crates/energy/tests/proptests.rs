//! Property tests for the energy substrate: storage bounds and attempt
//! semantics hold under arbitrary operation sequences.

use origin_energy::{Capacitor, DutyState, EnergyCostTable, EnergyNode, Harvester, Nvp};
use origin_trace::ConstantPower;
use origin_types::{Energy, Power, SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum CapOp {
    Charge(f64),
    TryDraw(f64),
    DrawUpTo(f64),
    Leak(u64),
}

fn arb_cap_op() -> impl Strategy<Value = CapOp> {
    prop_oneof![
        (0.0f64..500.0).prop_map(CapOp::Charge),
        (0.0f64..500.0).prop_map(CapOp::TryDraw),
        (0.0f64..500.0).prop_map(CapOp::DrawUpTo),
        (0u64..10_000).prop_map(CapOp::Leak),
    ]
}

proptest! {
    #[test]
    fn capacitor_charge_stays_bounded(
        capacity in 1.0f64..2_000.0,
        ops in proptest::collection::vec(arb_cap_op(), 0..64),
    ) {
        let cap_energy = Energy::from_microjoules(capacity);
        let mut cap = Capacitor::new(cap_energy);
        for op in ops {
            match op {
                CapOp::Charge(uj) => {
                    cap.charge(Energy::from_microjoules(uj));
                }
                CapOp::TryDraw(uj) => {
                    let before = cap.stored();
                    let ok = cap.try_draw(Energy::from_microjoules(uj));
                    if !ok {
                        prop_assert_eq!(cap.stored(), before, "failed draw must not change charge");
                    }
                }
                CapOp::DrawUpTo(uj) => {
                    let drawn = cap.draw_up_to(Energy::from_microjoules(uj));
                    prop_assert!(drawn <= Energy::from_microjoules(uj + 1e-12));
                }
                CapOp::Leak(ms) => cap.leak(SimDuration::from_millis(ms)),
            }
            prop_assert!(cap.stored() >= Energy::ZERO, "stored went negative");
            prop_assert!(cap.stored() <= cap_energy, "stored exceeded capacity");
            let soc = cap.state_of_charge();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&soc));
        }
    }

    #[test]
    fn node_attempt_window_semantics(
        power_uw in 0.0f64..400.0,
        cost_uj in 1.0f64..300.0,
        windows in 1usize..50,
        volatile in proptest::bool::ANY,
    ) {
        let nvp = if volatile { Nvp::volatile() } else { Nvp::non_volatile() };
        let mut node = EnergyNode::new(
            Harvester::new(ConstantPower::new(Power::from_microwatts(power_uw)), 0.8),
            Capacitor::new(Energy::from_microjoules(600.0)),
            nvp,
            EnergyCostTable::default(),
        );
        let cost = Energy::from_microjoules(cost_uj);
        let step = SimDuration::from_millis(500);
        let mut completed = 0u64;
        for w in 0..windows as u64 {
            let t0 = SimTime::from_micros(w * step.as_micros());
            node.advance(t0, t0 + step, DutyState::Sense);
            let before = node.stored();
            if node.attempt_window(cost) {
                completed += 1;
                // A completed attempt drains exactly the cost.
                let drained = before - node.stored();
                prop_assert!((drained.as_microjoules() - cost_uj).abs() < 1e-9);
            } else if volatile {
                // Volatile failure wastes everything.
                prop_assert_eq!(node.stored(), Energy::ZERO);
            } else {
                // NVP failure costs at most the checkpoint overhead.
                let lost = before - node.stored();
                prop_assert!(lost <= node.costs().checkpoint + Energy::from_microjoules(1e-9));
            }
        }
        let counters = node.counters();
        prop_assert_eq!(counters.completed, completed);
        prop_assert_eq!(
            counters.completed + counters.suspended + counters.lost,
            windows as u64
        );
    }

    #[test]
    fn harvester_output_monotone_in_efficiency(
        power_uw in 0.0f64..500.0,
        eff_lo in 0.01f64..0.5,
        eff_hi in 0.5f64..1.0,
        span_ms in 1u64..10_000,
    ) {
        let source = ConstantPower::new(Power::from_microwatts(power_uw));
        let lo = Harvester::new(source, eff_lo);
        let hi = Harvester::new(source, eff_hi);
        let to = SimTime::from_millis(span_ms);
        prop_assert!(hi.harvest_between(SimTime::ZERO, to) >= lo.harvest_between(SimTime::ZERO, to));
    }

    #[test]
    fn harvester_floor_only_reduces(
        power_uw in 0.0f64..500.0,
        floor_uw in 0.0f64..100.0,
        span_ms in 1u64..10_000,
    ) {
        let source = ConstantPower::new(Power::from_microwatts(power_uw));
        let plain = Harvester::new(source, 0.8);
        let floored = Harvester::new(source, 0.8).with_floor(Power::from_microwatts(floor_uw));
        let to = SimTime::from_millis(span_ms);
        prop_assert!(
            floored.harvest_between(SimTime::ZERO, to) <= plain.harvest_between(SimTime::ZERO, to)
        );
    }
}
