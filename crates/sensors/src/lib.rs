//! Synthetic body-worn IMU data for the Origin reproduction.
//!
//! The paper evaluates on MHEALTH (three IMUs at chest / left ankle / right
//! wrist, 50 Hz, six activities) and PAMAP2 (similar setup, 100 Hz, five
//! activities used). Neither dataset ships with this repository, so this
//! crate generates statistically analogous data from parametric
//! harmonic-motion models:
//!
//! * [`ActivitySignature`] — per (activity, location) oscillation model
//!   (fundamental frequency, per-axis amplitudes, posture offsets, noise);
//!   the default table is tuned so per-sensor/per-activity classifier
//!   accuracies reproduce the *pattern* of Fig. 2 (ankle best overall,
//!   chest best at climbing, wrist weakest);
//! * [`UserProfile`] — per-user gait variation (frequency/amplitude
//!   scaling, phase, extra noise) for the Fig. 6 personalization study;
//! * [`ImuWindow`] / [`window_features`] — fixed-length sample windows and
//!   the deterministic feature vector the classifiers consume;
//! * [`HarDataset`] + [`DatasetSpec`] — labelled train/test feature sets
//!   per sensor location;
//! * [`ActivityTimeline`] — semi-Markov activity sequences with per-class
//!   dwell times ("temporal continuity", Section III-A);
//! * [`add_noise_snr`] — Gaussian corruption at a target SNR (Fig. 6 uses
//!   20 dB).
//!
//! # Examples
//!
//! ```
//! use origin_sensors::{DatasetSpec, HarDataset};
//! use origin_types::SensorLocation;
//!
//! let dataset = HarDataset::generate(&DatasetSpec::mhealth_like().with_windows(8, 4), 42);
//! let chest = dataset.sensor(SensorLocation::Chest);
//! assert_eq!(chest.train.len(), 8 * dataset.activities().len());
//! assert_eq!(chest.test.len(), 4 * dataset.activities().len());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod dataset;
mod export;
mod features;
mod imu;
mod noise;
mod signature;
mod timeline;
mod user;
mod window;

pub use dataset::{sample_window, DatasetSpec, HarDataset, LabeledSample, SensorDataset};
pub use export::{export_sensor_dataset, read_samples_csv, write_samples_csv, ExportError};
pub use features::{window_features, FEATURES_PER_CHANNEL, FEATURE_DIM};
pub use imu::{ImuConfig, ImuSample};
pub use noise::add_noise_snr;
pub use signature::{ActivitySignature, SignatureTable};
pub use timeline::{ActivitySpan, ActivityTimeline, TimelineConfig};
pub use user::UserProfile;
pub use window::ImuWindow;
