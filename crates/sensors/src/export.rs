//! CSV export/import of labelled feature datasets.
//!
//! Lets the generated datasets be inspected, plotted, or consumed by
//! external ML tooling, and lets externally produced feature sets (e.g.
//! from the *real* MHEALTH recordings, if available) be fed into the
//! same pipeline. Format: a header `features,<dim>` then one sample per
//! line as `<dense_label>,<f0>,<f1>,...` with bit-exact hex-encoded
//! floats.

use crate::dataset::{LabeledSample, SensorDataset};
use origin_types::{ActivityClass, ActivitySet};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors produced by dataset CSV I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExportError {
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: &'static str,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl core::fmt::Display for ExportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExportError::Parse { line, reason } => {
                write!(f, "cannot parse dataset CSV line {line}: {reason}")
            }
            ExportError::Io(e) => write!(f, "dataset I/O error: {e}"),
        }
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ExportError {
    fn from(e: std::io::Error) -> Self {
        ExportError::Io(e)
    }
}

/// Writes `samples` to `writer`.
///
/// A `&mut` reference may be passed for `writer`.
///
/// # Errors
///
/// Returns [`ExportError::Io`] on writer failure and
/// [`ExportError::Parse`] when samples disagree on feature width.
pub fn write_samples_csv<W: Write>(
    samples: &[LabeledSample],
    writer: W,
) -> Result<(), ExportError> {
    let mut w = BufWriter::new(writer);
    let dim = samples.first().map_or(0, |s| s.features.len());
    writeln!(w, "features,{dim}")?;
    for (i, sample) in samples.iter().enumerate() {
        if sample.features.len() != dim {
            return Err(ExportError::Parse {
                line: i + 2,
                reason: "inconsistent feature width",
            });
        }
        let fields: Vec<String> = std::iter::once(sample.dense_label.to_string())
            .chain(
                sample
                    .features
                    .iter()
                    .map(|f| format!("{:016x}", f.to_bits())),
            )
            .collect();
        writeln!(w, "{}", fields.join(","))?;
    }
    w.flush()?;
    Ok(())
}

/// Reads samples previously written with [`write_samples_csv`], resolving
/// dense labels through `activities`.
///
/// A `&mut` reference may be passed for `reader`.
///
/// # Errors
///
/// Returns [`ExportError::Parse`] on malformed content (including labels
/// outside `activities`) and [`ExportError::Io`] on reader failure.
pub fn read_samples_csv<R: Read>(
    reader: R,
    activities: &ActivitySet,
) -> Result<Vec<LabeledSample>, ExportError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    let (_, header) = lines.next().ok_or(ExportError::Parse {
        line: 1,
        reason: "empty file",
    })?;
    let header = header?;
    let dim: usize = header
        .strip_prefix("features,")
        .and_then(|v| v.trim().parse().ok())
        .ok_or(ExportError::Parse {
            line: 1,
            reason: "bad header",
        })?;

    let mut samples = Vec::new();
    for (i, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let dense_label: usize =
            fields
                .next()
                .and_then(|v| v.trim().parse().ok())
                .ok_or(ExportError::Parse {
                    line: i + 1,
                    reason: "bad label",
                })?;
        let activity: ActivityClass =
            activities.class_at(dense_label).ok_or(ExportError::Parse {
                line: i + 1,
                reason: "label outside activity set",
            })?;
        let features: Vec<f64> = fields
            .map(|v| {
                u64::from_str_radix(v.trim(), 16)
                    .map(f64::from_bits)
                    .map_err(|_| ExportError::Parse {
                        line: i + 1,
                        reason: "bad hex float",
                    })
            })
            .collect::<Result<_, _>>()?;
        if features.len() != dim {
            return Err(ExportError::Parse {
                line: i + 1,
                reason: "wrong feature count",
            });
        }
        samples.push(LabeledSample {
            features,
            dense_label,
            activity,
        });
    }
    Ok(samples)
}

/// Convenience: exports a whole [`SensorDataset`] (train then test) as two
/// CSV blobs.
///
/// # Errors
///
/// Propagates [`write_samples_csv`] failures.
pub fn export_sensor_dataset(dataset: &SensorDataset) -> Result<(Vec<u8>, Vec<u8>), ExportError> {
    let mut train = Vec::new();
    write_samples_csv(&dataset.train, &mut train)?;
    let mut test = Vec::new();
    write_samples_csv(&dataset.test, &mut test)?;
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetSpec, HarDataset};
    use origin_types::SensorLocation;

    fn samples() -> (Vec<LabeledSample>, ActivitySet) {
        let spec = DatasetSpec::mhealth_like().with_windows(3, 2);
        let ds = HarDataset::generate(&spec, 5);
        (
            ds.sensor(SensorLocation::Chest).train.clone(),
            ds.activities().clone(),
        )
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let (samples, set) = samples();
        let mut buf = Vec::new();
        write_samples_csv(&samples, &mut buf).unwrap();
        let back = read_samples_csv(buf.as_slice(), &set).unwrap();
        assert_eq!(samples, back);
    }

    #[test]
    fn export_sensor_dataset_produces_both_splits() {
        let spec = DatasetSpec::mhealth_like().with_windows(3, 2);
        let ds = HarDataset::generate(&spec, 6);
        let (train, test) = export_sensor_dataset(ds.sensor(SensorLocation::LeftAnkle)).unwrap();
        let set = ds.activities();
        assert_eq!(read_samples_csv(train.as_slice(), set).unwrap().len(), 18);
        assert_eq!(read_samples_csv(test.as_slice(), set).unwrap().len(), 12);
    }

    #[test]
    fn rejects_malformed_input() {
        let set = ActivitySet::mhealth();
        assert!(matches!(
            read_samples_csv("".as_bytes(), &set),
            Err(ExportError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_samples_csv("bogus\n".as_bytes(), &set),
            Err(ExportError::Parse { line: 1, .. })
        ));
        let bad_label = "features,1\n99,0000000000000000\n";
        assert!(matches!(
            read_samples_csv(bad_label.as_bytes(), &set),
            Err(ExportError::Parse { line: 2, .. })
        ));
        let bad_float = "features,1\n0,zzzz\n";
        assert!(matches!(
            read_samples_csv(bad_float.as_bytes(), &set),
            Err(ExportError::Parse { line: 2, .. })
        ));
        let wrong_count = "features,2\n0,0000000000000000\n";
        assert!(matches!(
            read_samples_csv(wrong_count.as_bytes(), &set),
            Err(ExportError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn pamap2_labels_resolve_through_its_set() {
        let set = ActivitySet::pamap2();
        // Dense label 4 is Jumping in PAMAP2's five-class set.
        let csv = "features,1\n4,0000000000000000\n";
        let samples = read_samples_csv(csv.as_bytes(), &set).unwrap();
        assert_eq!(samples[0].activity, ActivityClass::Jumping);
    }
}
