//! SNR-targeted Gaussian corruption of IMU windows.

use crate::window::{ImuWindow, NormalShim};
use rand::Rng;

/// Adds white Gaussian noise to every channel of `window` such that the
/// ratio of (zero-mean) signal power to injected noise power equals
/// `snr_db`.
///
/// Fig. 6 "mimic\[s\] the noisy and inconsistent behaviour of real-world
/// scenarios ... by adding a Gaussian noise (with maximum SNR of 20dB)
/// over the unseen test data".
///
/// # Panics
///
/// Panics when `snr_db` is not finite.
pub fn add_noise_snr<R: Rng + ?Sized>(window: &mut ImuWindow, snr_db: f64, rng: &mut R) {
    assert!(snr_db.is_finite(), "SNR must be finite, got {snr_db}");
    let signal_power = window.signal_power();
    if signal_power <= 0.0 {
        return;
    }
    let noise_power = signal_power / 10f64.powf(snr_db / 10.0);
    let noise_std = noise_power.sqrt();
    for sample in window.samples_mut() {
        for axis in 0..3 {
            let na: f64 = rng.sample(NormalShim);
            sample.accel[axis] += noise_std * na;
            let ng: f64 = rng.sample(NormalShim);
            sample.gyro[axis] += noise_std * 0.4 * ng;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imu::ImuConfig;
    use crate::signature::SignatureTable;
    use crate::user::UserProfile;
    use origin_types::{ActivityClass, SensorLocation, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn window(seed: u64) -> ImuWindow {
        let table = SignatureTable::calibrated();
        let mut rng = StdRng::seed_from_u64(seed);
        ImuWindow::synthesize(
            table.signature(ActivityClass::Running, SensorLocation::LeftAnkle),
            &UserProfile::nominal(UserId::new(0)),
            &ImuConfig::mhealth_like(),
            ActivityClass::Running,
            &mut rng,
        )
    }

    #[test]
    fn noise_increases_power() {
        let clean = window(1);
        let mut noisy = clean.clone();
        let mut rng = StdRng::seed_from_u64(2);
        add_noise_snr(&mut noisy, 10.0, &mut rng);
        assert!(noisy.signal_power() > clean.signal_power());
        assert_ne!(clean, noisy);
    }

    #[test]
    fn high_snr_perturbs_less_than_low_snr() {
        let clean = window(3);
        let mut mild = clean.clone();
        let mut harsh = clean.clone();
        let mut rng = StdRng::seed_from_u64(4);
        add_noise_snr(&mut mild, 30.0, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        add_noise_snr(&mut harsh, 0.0, &mut rng);
        let dev = |w: &ImuWindow| -> f64 {
            w.samples()
                .iter()
                .zip(clean.samples())
                .map(|(a, b)| {
                    (0..3)
                        .map(|i| (a.accel[i] - b.accel[i]).powi(2))
                        .sum::<f64>()
                })
                .sum()
        };
        assert!(dev(&mild) * 10.0 < dev(&harsh));
    }

    #[test]
    fn injected_noise_power_matches_target() {
        let clean = window(5);
        let signal_power = clean.signal_power();
        let mut noisy = clean.clone();
        let mut rng = StdRng::seed_from_u64(6);
        add_noise_snr(&mut noisy, 20.0, &mut rng);
        // Measure accel noise power directly against the clean window.
        let n = clean.len() as f64;
        let noise_power: f64 = noisy
            .samples()
            .iter()
            .zip(clean.samples())
            .map(|(a, b)| {
                (0..3)
                    .map(|i| (a.accel[i] - b.accel[i]).powi(2))
                    .sum::<f64>()
                    / 3.0
            })
            .sum::<f64>()
            / n;
        let target = signal_power / 100.0; // 20 dB
        let ratio = noise_power / target;
        assert!((0.5..2.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "SNR must be finite")]
    fn non_finite_snr_panics() {
        let mut w = window(7);
        let mut rng = StdRng::seed_from_u64(0);
        add_noise_snr(&mut w, f64::NAN, &mut rng);
    }
}
