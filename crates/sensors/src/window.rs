//! Fixed-length IMU sample windows and their synthesis.

use crate::imu::{ImuConfig, ImuSample};
use crate::signature::ActivitySignature;
use crate::user::UserProfile;
use origin_types::{sum_ordered, ActivityClass};
use rand::Rng;
use rand_distr_shim::StandardNormal;

/// A fixed-length run of IMU samples, the unit of classification.
#[derive(Debug, Clone, PartialEq)]
pub struct ImuWindow {
    samples: Vec<ImuSample>,
    sample_rate_hz: f64,
    activity: ActivityClass,
}

impl ImuWindow {
    /// Wraps raw samples into a window.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty or the sample rate is not positive.
    #[must_use]
    pub fn new(samples: Vec<ImuSample>, sample_rate_hz: f64, activity: ActivityClass) -> Self {
        assert!(!samples.is_empty(), "window must contain samples");
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        Self {
            samples,
            sample_rate_hz,
            activity,
        }
    }

    /// Synthesizes one window of `config.window_len` samples from a
    /// harmonic-motion signature, a user profile and a random phase/noise
    /// draw from `rng`.
    ///
    /// Each call produces a distinct window (random starting phase and
    /// noise), while the *distribution* is fixed by `(signature, user)`.
    pub fn synthesize<R: Rng + ?Sized>(
        signature: &ActivitySignature,
        user: &UserProfile,
        config: &ImuConfig,
        activity: ActivityClass,
        rng: &mut R,
    ) -> Self {
        let freq = signature.freq_hz * user.freq_scale;
        let window_phase: f64 = rng.gen::<f64>() * core::f64::consts::TAU;
        let phase = user.phase + window_phase;
        let noise_std = signature.noise_std * user.noise_scale;
        // Per-window baseline wander (strap slip / posture drift).
        let mut wander = [0.0; 3];
        for w in &mut wander {
            let n: f64 = rng.sample(StandardNormal);
            *w = signature.offset_jitter * n;
        }
        let mut samples = Vec::with_capacity(config.window_len);
        for i in 0..config.window_len {
            let t = i as f64 / config.sample_rate_hz;
            let base = core::f64::consts::TAU * freq * t + phase;
            let mut accel = [0.0; 3];
            let mut gyro = [0.0; 3];
            for axis in 0..3 {
                // Per-axis phase lag gives the motion a realistic 3-D shape.
                let lag = axis as f64 * 0.7;
                let wave =
                    (base + lag).sin() + signature.harmonic2 * (2.0 * base + lag * 1.9).sin();
                let noise_a: f64 = rng.sample(StandardNormal);
                accel[axis] = signature.accel_offset[axis]
                    + wander[axis]
                    + signature.accel_amp[axis] * user.amp_scale * wave
                    + noise_std * noise_a;
                let noise_g: f64 = rng.sample(StandardNormal);
                gyro[axis] = signature.gyro_amp[axis] * user.amp_scale * (base + lag + 0.5).cos()
                    + 0.4 * noise_std * noise_g;
            }
            samples.push(ImuSample { accel, gyro });
        }
        Self {
            samples,
            sample_rate_hz: config.sample_rate_hz,
            activity,
        }
    }

    /// The samples.
    #[must_use]
    pub fn samples(&self) -> &[ImuSample] {
        &self.samples
    }

    /// Mutable access to the samples (noise injection).
    pub fn samples_mut(&mut self) -> &mut [ImuSample] {
        &mut self.samples
    }

    /// Sampling rate, Hz.
    #[must_use]
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Ground-truth activity of the window.
    #[must_use]
    pub fn activity(&self) -> ActivityClass {
        self.activity
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always false (windows are non-empty by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The window as a `[channel][time]` matrix in
    /// `[ax, ay, az, gx, gy, gz]` channel order — the raw-input layout a
    /// convolutional classifier consumes.
    #[must_use]
    pub fn channel_matrix(&self) -> Vec<Vec<f64>> {
        (0..ImuSample::CHANNELS)
            .map(|ch| self.samples.iter().map(|s| s.channels()[ch]).collect())
            .collect()
    }

    /// Mean signal power across all six channels (for SNR computations),
    /// measured about each channel's mean.
    #[must_use]
    pub fn signal_power(&self) -> f64 {
        let n = self.samples.len() as f64;
        let mut total = 0.0;
        for ch in 0..ImuSample::CHANNELS {
            let mean = sum_ordered(self.samples.iter().map(|s| s.channels()[ch])) / n;
            total += sum_ordered(
                self.samples
                    .iter()
                    .map(|s| (s.channels()[ch] - mean).powi(2)),
            ) / n;
        }
        total / ImuSample::CHANNELS as f64
    }
}

/// Tiny internal shim: sampling from a standard normal via Box–Muller so we
/// avoid a `rand_distr` dependency.
mod rand_distr_shim {
    use rand::distributions::Distribution;
    use rand::Rng;

    /// Standard normal distribution N(0, 1).
    #[derive(Debug, Clone, Copy)]
    pub struct StandardNormal;

    impl Distribution<f64> for StandardNormal {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // Box–Muller; u1 is kept away from zero for a finite log.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
        }
    }
}

pub(crate) use rand_distr_shim::StandardNormal as NormalShim;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SignatureTable;
    use origin_types::{SensorLocation, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synth(seed: u64) -> ImuWindow {
        let table = SignatureTable::calibrated();
        let sig = table.signature(ActivityClass::Walking, SensorLocation::LeftAnkle);
        let user = UserProfile::nominal(UserId::new(0));
        let mut rng = StdRng::seed_from_u64(seed);
        ImuWindow::synthesize(
            sig,
            &user,
            &ImuConfig::mhealth_like(),
            ActivityClass::Walking,
            &mut rng,
        )
    }

    #[test]
    fn synthesis_fills_window() {
        let w = synth(1);
        assert_eq!(w.len(), 64);
        assert!(!w.is_empty());
        assert_eq!(w.activity(), ActivityClass::Walking);
        assert_eq!(w.sample_rate_hz(), 50.0);
    }

    #[test]
    fn synthesis_is_deterministic_given_rng() {
        assert_eq!(synth(5), synth(5));
        assert_ne!(synth(5), synth(6));
    }

    #[test]
    fn walking_ankle_has_visible_oscillation() {
        let w = synth(2);
        // Oscillation amplitude ~4 m/s² on z; std must clearly exceed noise.
        let z: Vec<f64> = w.samples().iter().map(|s| s.accel[2]).collect();
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        let std = (z.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / z.len() as f64).sqrt();
        assert!(std > 1.5, "std = {std}");
        // Gravity shows in the mean, up to the per-window baseline wander.
        assert!((mean - 9.8).abs() < 4.0, "mean = {mean}");
    }

    #[test]
    fn signal_power_is_positive() {
        let w = synth(3);
        assert!(w.signal_power() > 0.1);
    }

    #[test]
    fn normal_shim_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.sample(NormalShim)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    #[should_panic(expected = "must contain samples")]
    fn empty_window_panics() {
        let _ = ImuWindow::new(vec![], 50.0, ActivityClass::Walking);
    }
}
