//! IMU sample representation and sensor-level configuration.

/// One 6-axis IMU reading: 3-axis accelerometer (m/s²) + 3-axis gyroscope
/// (rad/s).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ImuSample {
    /// Accelerometer reading, m/s² per axis.
    pub accel: [f64; 3],
    /// Gyroscope reading, rad/s per axis.
    pub gyro: [f64; 3],
}

impl ImuSample {
    /// Number of scalar channels per sample.
    pub const CHANNELS: usize = 6;

    /// The six channels flattened in `[ax, ay, az, gx, gy, gz]` order.
    #[must_use]
    pub fn channels(&self) -> [f64; 6] {
        [
            self.accel[0],
            self.accel[1],
            self.accel[2],
            self.gyro[0],
            self.gyro[1],
            self.gyro[2],
        ]
    }

    /// Accelerometer vector magnitude.
    #[must_use]
    pub fn accel_magnitude(&self) -> f64 {
        (self.accel[0].powi(2) + self.accel[1].powi(2) + self.accel[2].powi(2)).sqrt()
    }

    /// Gyroscope vector magnitude.
    #[must_use]
    pub fn gyro_magnitude(&self) -> f64 {
        (self.gyro[0].powi(2) + self.gyro[1].powi(2) + self.gyro[2].powi(2)).sqrt()
    }
}

/// Sampling configuration of one IMU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuConfig {
    /// Sampling rate, Hz.
    pub sample_rate_hz: f64,
    /// Samples per classification window.
    pub window_len: usize,
}

impl ImuConfig {
    /// MHEALTH-like configuration: 50 Hz, 64-sample (1.28 s) windows.
    #[must_use]
    pub fn mhealth_like() -> Self {
        Self {
            sample_rate_hz: 50.0,
            window_len: 64,
        }
    }

    /// PAMAP2-like configuration: 100 Hz, 128-sample (1.28 s) windows.
    #[must_use]
    pub fn pamap2_like() -> Self {
        Self {
            sample_rate_hz: 100.0,
            window_len: 128,
        }
    }

    /// Duration of one window in seconds.
    ///
    /// # Panics
    ///
    /// Panics when the sample rate is not positive.
    #[must_use]
    pub fn window_secs(&self) -> f64 {
        assert!(self.sample_rate_hz > 0.0, "sample rate must be positive");
        self.window_len as f64 / self.sample_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_flatten_in_order() {
        let s = ImuSample {
            accel: [1.0, 2.0, 3.0],
            gyro: [4.0, 5.0, 6.0],
        };
        assert_eq!(s.channels(), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn magnitudes() {
        let s = ImuSample {
            accel: [3.0, 4.0, 0.0],
            gyro: [0.0, 0.0, 2.0],
        };
        assert!((s.accel_magnitude() - 5.0).abs() < 1e-12);
        assert!((s.gyro_magnitude() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn window_durations() {
        assert!((ImuConfig::mhealth_like().window_secs() - 1.28).abs() < 1e-12);
        assert!((ImuConfig::pamap2_like().window_secs() - 1.28).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_rate_panics() {
        let cfg = ImuConfig {
            sample_rate_hz: 0.0,
            window_len: 10,
        };
        let _ = cfg.window_secs();
    }
}
