//! Semi-Markov activity timelines.
//!
//! "Human activity has temporal continuity, i.e. most activities last for
//! some duration" (Section III-A). The timeline samples an activity, holds
//! it for a jittered class-typical dwell, then transitions uniformly to a
//! different class. This continuity is exactly the workload property the
//! recall mechanism and the activity-aware scheduler exploit.

use origin_types::{ActivityClass, ActivitySet, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One contiguous span of a single activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivitySpan {
    /// The activity performed.
    pub activity: ActivityClass,
    /// When the span starts.
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
}

impl ActivitySpan {
    /// Exclusive end instant of the span.
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// Configuration for timeline generation.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineConfig {
    /// Classes the timeline draws from.
    pub activities: ActivitySet,
    /// Multiplicative dwell jitter: actual dwell is
    /// `typical * uniform(1 - jitter, 1 + jitter)`.
    pub dwell_jitter: f64,
    /// Scales every dwell (1.0 = the class-typical values). Smaller values
    /// produce faster activity switching, stressing recall staleness.
    pub dwell_scale: f64,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        Self {
            activities: ActivitySet::mhealth(),
            dwell_jitter: 0.4,
            dwell_scale: 1.0,
        }
    }
}

/// A generated activity timeline covering a fixed horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityTimeline {
    spans: Vec<ActivitySpan>,
    total: SimDuration,
}

impl ActivityTimeline {
    /// Generates a timeline of at least `horizon` length from `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `horizon` is zero, `dwell_jitter` ∉ `[0, 1)` or
    /// `dwell_scale` ≤ 0.
    #[must_use]
    pub fn generate(config: &TimelineConfig, seed: u64, horizon: SimDuration) -> Self {
        assert!(!horizon.is_zero(), "horizon must be positive");
        assert!(
            (0.0..1.0).contains(&config.dwell_jitter),
            "dwell jitter must be in [0, 1)"
        );
        assert!(config.dwell_scale > 0.0, "dwell scale must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = config.activities.as_slice();
        let mut spans = Vec::new();
        let mut t = SimTime::ZERO;
        let mut current = classes[rng.gen_range(0..classes.len())];
        while t.saturating_since(SimTime::ZERO) < horizon {
            let typical = current.typical_dwell_ms() as f64 * config.dwell_scale;
            let jitter = 1.0 + config.dwell_jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            let dwell = SimDuration::from_millis((typical * jitter).max(500.0) as u64);
            spans.push(ActivitySpan {
                activity: current,
                start: t,
                duration: dwell,
            });
            t += dwell;
            // Uniform transition to a *different* class (activities do not
            // repeat back-to-back — that would just extend the dwell).
            if classes.len() > 1 {
                loop {
                    let next = classes[rng.gen_range(0..classes.len())];
                    if next != current {
                        current = next;
                        break;
                    }
                }
            }
        }
        Self {
            spans,
            total: t.saturating_since(SimTime::ZERO),
        }
    }

    /// The spans in chronological order.
    #[must_use]
    pub fn spans(&self) -> &[ActivitySpan] {
        &self.spans
    }

    /// Total covered duration (≥ the requested horizon).
    #[must_use]
    pub fn total_duration(&self) -> SimDuration {
        self.total
    }

    /// The activity in progress at instant `t`.
    ///
    /// Instants beyond the covered horizon report the final span's
    /// activity.
    #[must_use]
    pub fn activity_at(&self, t: SimTime) -> ActivityClass {
        // Binary search over span starts.
        match self.spans.binary_search_by(|span| span.start.cmp(&t)) {
            Ok(i) => self.spans[i].activity,
            Err(0) => self.spans[0].activity,
            Err(i) => self.spans[i - 1].activity,
        }
    }

    /// Iterates `(window_start, activity)` pairs at a fixed window period
    /// across the horizon — the simulator's ground-truth stream.
    pub fn windows(
        &self,
        period: SimDuration,
    ) -> impl Iterator<Item = (SimTime, ActivityClass)> + '_ {
        let n = self.total.steps_of(period);
        (0..n).map(move |i| {
            let t = SimTime::from_micros(i * period.as_micros());
            (t, self.activity_at(t))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_covers_horizon() {
        let cfg = TimelineConfig::default();
        let h = SimDuration::from_secs(600);
        let a = ActivityTimeline::generate(&cfg, 5, h);
        let b = ActivityTimeline::generate(&cfg, 5, h);
        assert_eq!(a, b);
        assert!(a.total_duration() >= h);
        assert!(!a.spans().is_empty());
    }

    #[test]
    fn no_back_to_back_repeats() {
        let cfg = TimelineConfig::default();
        let tl = ActivityTimeline::generate(&cfg, 7, SimDuration::from_secs(3_600));
        for pair in tl.spans().windows(2) {
            assert_ne!(pair[0].activity, pair[1].activity);
        }
    }

    #[test]
    fn spans_are_contiguous() {
        let cfg = TimelineConfig::default();
        let tl = ActivityTimeline::generate(&cfg, 8, SimDuration::from_secs(600));
        for pair in tl.spans().windows(2) {
            assert_eq!(pair[0].end(), pair[1].start);
        }
    }

    #[test]
    fn activity_at_matches_spans() {
        let cfg = TimelineConfig::default();
        let tl = ActivityTimeline::generate(&cfg, 9, SimDuration::from_secs(600));
        for span in tl.spans() {
            assert_eq!(tl.activity_at(span.start), span.activity);
            let mid = span.start + span.duration / 2;
            assert_eq!(tl.activity_at(mid), span.activity);
        }
        // Past the horizon: final activity.
        let last = tl.spans().last().unwrap();
        assert_eq!(
            tl.activity_at(last.end() + SimDuration::from_secs(100)),
            last.activity
        );
    }

    #[test]
    fn windows_iterate_at_period() {
        let cfg = TimelineConfig::default();
        let tl = ActivityTimeline::generate(&cfg, 10, SimDuration::from_secs(60));
        let period = SimDuration::from_millis(500);
        let windows: Vec<_> = tl.windows(period).collect();
        assert_eq!(windows.len() as u64, tl.total_duration().steps_of(period));
        assert_eq!(windows[0].0, SimTime::ZERO);
        assert_eq!(windows[1].0, SimTime::from_millis(500));
    }

    #[test]
    fn dwell_scale_shortens_spans() {
        let mut cfg = TimelineConfig::default();
        let slow = ActivityTimeline::generate(&cfg, 11, SimDuration::from_secs(3600));
        cfg.dwell_scale = 0.25;
        let fast = ActivityTimeline::generate(&cfg, 11, SimDuration::from_secs(3600));
        assert!(fast.spans().len() > 2 * slow.spans().len());
    }

    #[test]
    fn single_class_set_never_transitions() {
        let cfg = TimelineConfig {
            activities: ActivitySet::new([ActivityClass::Walking]).unwrap(),
            ..TimelineConfig::default()
        };
        let tl = ActivityTimeline::generate(&cfg, 12, SimDuration::from_secs(300));
        assert!(tl
            .spans()
            .iter()
            .all(|s| s.activity == ActivityClass::Walking));
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_panics() {
        let _ = ActivityTimeline::generate(&TimelineConfig::default(), 0, SimDuration::ZERO);
    }
}
