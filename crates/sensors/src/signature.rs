//! Parametric harmonic-motion models per (activity, location).
//!
//! Each body location experiences each activity differently — "while
//! cycling, the data sensed by the ankle, chest and wrist sensors would be
//! entirely different because of the nature of the motion" (Section III).
//! A signature captures that as a fundamental oscillation frequency,
//! per-axis amplitudes, a posture (gravity-projection) offset and a noise
//! level. The *relative geometry* of the signatures at one location
//! determines how separable the activities are for that location's
//! classifier, which is what produces the Fig. 2 accuracy pattern.

use origin_types::{ActivityClass, SensorLocation};

/// Harmonic-motion model of one activity as seen from one body location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivitySignature {
    /// Fundamental gait/motion frequency, Hz.
    pub freq_hz: f64,
    /// Per-axis accelerometer oscillation amplitude, m/s².
    pub accel_amp: [f64; 3],
    /// Per-axis gyroscope oscillation amplitude, rad/s.
    pub gyro_amp: [f64; 3],
    /// Static posture offset (gravity projection), m/s².
    pub accel_offset: [f64; 3],
    /// Relative amplitude of the second harmonic (heel-strike sharpness).
    pub harmonic2: f64,
    /// Gaussian sensor+motion noise std, m/s² (gyro noise scales at 0.4×).
    pub noise_std: f64,
    /// Std of the per-window random baseline wander added to each accel
    /// axis, m/s². Models strap slip / posture drift; keeps the mean
    /// features from trivially separating the classes.
    pub offset_jitter: f64,
}

impl ActivitySignature {
    /// A quiet, noise-only signature (sensor at rest).
    #[must_use]
    pub fn quiescent(noise_std: f64) -> Self {
        Self {
            freq_hz: 0.0,
            accel_amp: [0.0; 3],
            gyro_amp: [0.0; 3],
            accel_offset: [0.0, 0.0, 9.81],
            harmonic2: 0.0,
            noise_std,
            offset_jitter: 0.0,
        }
    }
}

/// The full (activity × location) signature table.
///
/// The default table is hand-tuned so that classifiers trained on the
/// generated data reproduce the qualitative Fig. 2 pattern:
///
/// * the **left ankle** sees large, well-separated locomotion signals —
///   best overall accuracy;
/// * the **chest** sees moderate signals but a distinctive torso-pitch
///   gyro during climbing — best at climbing;
/// * the **right wrist** sees weakly coupled, noisy arm motion — weakest
///   overall, with walking/jogging and cycling/climbing confusable.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureTable {
    // [activity][location]
    table: Vec<[ActivitySignature; SensorLocation::COUNT]>,
}

impl SignatureTable {
    /// The calibrated default table described above.
    #[must_use]
    pub fn calibrated() -> Self {
        use ActivityClass as A;
        let mut table =
            vec![[ActivitySignature::quiescent(0.5); SensorLocation::COUNT]; ActivityClass::COUNT];
        let mut set =
            |a: A, chest: ActivitySignature, ankle: ActivitySignature, wrist: ActivitySignature| {
                table[a.index()] = [chest, ankle, wrist];
            };

        let sig = |freq: f64,
                   aamp: [f64; 3],
                   gamp: [f64; 3],
                   off: [f64; 3],
                   h2: f64,
                   noise: f64,
                   jitter: f64| ActivitySignature {
            freq_hz: freq,
            accel_amp: aamp,
            gyro_amp: gamp,
            accel_offset: off,
            harmonic2: h2,
            noise_std: noise,
            offset_jitter: jitter,
        };

        // Baseline per-location noise/wander: the wrist moves most
        // erratically, the ankle is strapped tightest.
        const CHEST_NOISE: f64 = 2.6;
        const ANKLE_NOISE: f64 = 2.0;
        const WRIST_NOISE: f64 = 2.5;
        const CHEST_JIT: f64 = 1.5;
        const ANKLE_JIT: f64 = 1.3;
        const WRIST_JIT: f64 = 1.7;

        // Walking: 1.75 Hz. Moderate everywhere; at the wrist the arm swing
        // sits on the jogging continuum.
        set(
            A::Walking,
            sig(
                1.75,
                [0.9, 0.5, 1.3],
                [0.3, 0.2, 0.2],
                [0.0, 0.0, 9.8],
                0.35,
                CHEST_NOISE,
                CHEST_JIT,
            ),
            sig(
                1.75,
                [3.0, 1.2, 3.6],
                [1.5, 0.5, 0.7],
                [0.0, 0.0, 9.8],
                0.5,
                ANKLE_NOISE,
                ANKLE_JIT,
            ),
            sig(
                1.75,
                [1.3, 1.0, 0.9],
                [0.8, 0.7, 0.5],
                [0.0, 3.5, 9.1],
                0.3,
                WRIST_NOISE,
                WRIST_JIT,
            ),
        );
        // Climbing: 1.55 Hz, deliberately near walking. The chest gets a
        // strong, distinctive pitch gyro (torso lean each step) — chest is
        // the best climbing sensor; at the ankle it shadows walking.
        set(
            A::Climbing,
            sig(
                1.55,
                [1.1, 0.6, 1.5],
                [2.1, 0.4, 0.3],
                [1.2, 0.0, 9.6],
                0.4,
                CHEST_NOISE,
                CHEST_JIT,
            ),
            sig(
                1.55,
                [2.6, 1.1, 3.2],
                [1.3, 0.5, 0.6],
                [0.3, 0.0, 9.7],
                0.45,
                ANKLE_NOISE,
                ANKLE_JIT,
            ),
            sig(
                1.55,
                [0.9, 0.8, 0.7],
                [0.5, 0.5, 0.4],
                [0.6, 3.3, 9.0],
                0.3,
                WRIST_NOISE,
                WRIST_JIT,
            ),
        );
        // Cycling: 1.15 Hz. Ankle sees smooth strong circular motion
        // (distinctive); chest and wrist are nearly quiet — at the wrist it
        // shadows climbing.
        set(
            A::Cycling,
            sig(
                1.15,
                [0.5, 0.4, 0.6],
                [0.3, 0.3, 0.2],
                [2.4, 0.0, 9.4],
                0.2,
                CHEST_NOISE,
                CHEST_JIT,
            ),
            sig(
                1.15,
                [2.4, 2.2, 2.0],
                [2.2, 1.8, 1.1],
                [0.8, 0.0, 9.7],
                0.15,
                ANKLE_NOISE * 0.8,
                ANKLE_JIT,
            ),
            sig(
                1.15,
                [0.7, 0.5, 0.5],
                [0.4, 0.3, 0.3],
                [0.9, 3.0, 9.2],
                0.2,
                WRIST_NOISE,
                WRIST_JIT,
            ),
        );
        // Running: 2.75 Hz. Overlaps jogging everywhere; the ankle keeps
        // the largest amplitude gap.
        set(
            A::Running,
            sig(
                2.75,
                [2.2, 1.0, 3.0],
                [0.8, 0.5, 0.5],
                [0.3, 0.0, 9.7],
                0.5,
                CHEST_NOISE,
                CHEST_JIT,
            ),
            sig(
                2.75,
                [6.4, 2.2, 7.4],
                [3.0, 1.0, 1.3],
                [0.0, 0.0, 9.8],
                0.6,
                ANKLE_NOISE,
                ANKLE_JIT,
            ),
            sig(
                2.75,
                [2.6, 2.1, 1.8],
                [1.6, 1.3, 0.9],
                [0.0, 3.4, 9.1],
                0.5,
                WRIST_NOISE,
                WRIST_JIT,
            ),
        );
        // Jogging: 2.45 Hz, the running/walking middle ground.
        set(
            A::Jogging,
            sig(
                2.45,
                [1.8, 0.9, 2.5],
                [0.7, 0.45, 0.45],
                [0.2, 0.0, 9.75],
                0.45,
                CHEST_NOISE,
                CHEST_JIT,
            ),
            sig(
                2.45,
                [4.6, 1.7, 5.4],
                [2.2, 0.8, 1.0],
                [0.0, 0.0, 9.8],
                0.55,
                ANKLE_NOISE,
                ANKLE_JIT,
            ),
            sig(
                2.45,
                [2.0, 1.7, 1.4],
                [1.3, 1.0, 0.8],
                [0.0, 3.5, 9.1],
                0.45,
                WRIST_NOISE,
                WRIST_JIT,
            ),
        );
        // Jumping: 3.3 Hz vertical bursts; clearest at the ankle, moderate
        // elsewhere.
        set(
            A::Jumping,
            sig(
                3.3,
                [1.2, 0.8, 3.4],
                [0.5, 0.5, 0.35],
                [0.0, 0.0, 9.85],
                0.7,
                CHEST_NOISE,
                CHEST_JIT,
            ),
            sig(
                3.3,
                [2.6, 1.5, 7.6],
                [1.2, 0.8, 0.8],
                [0.0, 0.0, 9.9],
                0.7,
                ANKLE_NOISE,
                ANKLE_JIT,
            ),
            sig(
                3.3,
                [1.5, 1.3, 2.4],
                [1.0, 0.9, 0.7],
                [0.0, 3.0, 9.3],
                0.6,
                WRIST_NOISE,
                WRIST_JIT,
            ),
        );

        Self { table }
    }

    /// The signature of `activity` as seen from `location`.
    #[must_use]
    pub fn signature(
        &self,
        activity: ActivityClass,
        location: SensorLocation,
    ) -> &ActivitySignature {
        &self.table[activity.index()][location.index()]
    }

    /// Mutable access for experiment-specific retuning.
    pub fn signature_mut(
        &mut self,
        activity: ActivityClass,
        location: SensorLocation,
    ) -> &mut ActivitySignature {
        &mut self.table[activity.index()][location.index()]
    }
}

impl Default for SignatureTable {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_pairs() {
        let t = SignatureTable::calibrated();
        for a in ActivityClass::ALL {
            for l in SensorLocation::ALL {
                let s = t.signature(a, l);
                assert!(s.freq_hz > 0.0, "{a}/{l} has zero frequency");
                assert!(s.noise_std > 0.0);
            }
        }
    }

    #[test]
    fn ankle_sees_biggest_locomotion_signal() {
        let t = SignatureTable::calibrated();
        for a in [
            ActivityClass::Walking,
            ActivityClass::Running,
            ActivityClass::Jogging,
        ] {
            let ankle: f64 = t
                .signature(a, SensorLocation::LeftAnkle)
                .accel_amp
                .iter()
                .sum();
            let wrist: f64 = t
                .signature(a, SensorLocation::RightWrist)
                .accel_amp
                .iter()
                .sum();
            assert!(ankle > wrist, "{a}: ankle should outswing wrist");
        }
    }

    #[test]
    fn chest_climbing_gyro_is_distinctive() {
        let t = SignatureTable::calibrated();
        let climb_pitch = t
            .signature(ActivityClass::Climbing, SensorLocation::Chest)
            .gyro_amp[0];
        for a in ActivityClass::ALL {
            if a != ActivityClass::Climbing {
                let other = t.signature(a, SensorLocation::Chest).gyro_amp[0];
                assert!(
                    climb_pitch > other,
                    "chest pitch gyro must single out climbing vs {a}"
                );
            }
        }
    }

    #[test]
    fn quiescent_signature_is_still() {
        let q = ActivitySignature::quiescent(0.3);
        assert_eq!(q.accel_amp, [0.0; 3]);
        assert_eq!(q.freq_hz, 0.0);
        assert!((q.accel_offset[2] - 9.81).abs() < 1e-12);
    }

    #[test]
    fn signature_mut_allows_retuning() {
        let mut t = SignatureTable::default();
        t.signature_mut(ActivityClass::Walking, SensorLocation::Chest)
            .noise_std = 9.0;
        assert_eq!(
            t.signature(ActivityClass::Walking, SensorLocation::Chest)
                .noise_std,
            9.0
        );
    }
}
