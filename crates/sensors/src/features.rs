//! Deterministic feature extraction from IMU windows.
//!
//! The per-sensor classifiers in the paper are small CNNs over raw
//! windows; we train equally small MLPs over hand-computed features
//! instead. The feature set (per channel: mean, standard deviation,
//! mean-crossing rate, dominant-frequency power ratio) carries the same
//! information the first convolutional layers of [11]'s nets learn —
//! posture, intensity and rhythm — which is what the activity classes
//! differ in.

use crate::imu::ImuSample;
use crate::window::ImuWindow;
use origin_types::sum_ordered;

/// Features computed per channel.
pub const FEATURES_PER_CHANNEL: usize = 4;

/// Total feature vector length: 6 IMU channels plus the accelerometer
/// magnitude pseudo-channel.
pub const FEATURE_DIM: usize = (ImuSample::CHANNELS + 1) * FEATURES_PER_CHANNEL;

/// Extracts the fixed-length feature vector from a window.
///
/// The output is deterministic in the window contents and independent of
/// global state, so a feature vector can be recomputed bit-exactly
/// anywhere in the pipeline.
///
/// ```
/// use origin_sensors::{window_features, FEATURE_DIM, ImuWindow};
/// # use origin_sensors::{ImuConfig, SignatureTable, UserProfile};
/// # use origin_types::{ActivityClass, SensorLocation, UserId};
/// # use rand::SeedableRng;
/// # let table = SignatureTable::calibrated();
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// # let w = ImuWindow::synthesize(
/// #     table.signature(ActivityClass::Walking, SensorLocation::Chest),
/// #     &UserProfile::nominal(UserId::new(0)),
/// #     &ImuConfig::mhealth_like(),
/// #     ActivityClass::Walking,
/// #     &mut rng,
/// # );
/// let features = window_features(&w);
/// assert_eq!(features.len(), FEATURE_DIM);
/// ```
#[must_use]
pub fn window_features(window: &ImuWindow) -> Vec<f64> {
    let n = window.len();
    let mut features = Vec::with_capacity(FEATURE_DIM);
    let mut channel_buf = Vec::with_capacity(n);
    for ch in 0..=ImuSample::CHANNELS {
        channel_buf.clear();
        if ch < ImuSample::CHANNELS {
            channel_buf.extend(window.samples().iter().map(|s| s.channels()[ch]));
        } else {
            channel_buf.extend(window.samples().iter().map(ImuSample::accel_magnitude));
        }
        push_channel_features(&channel_buf, window.sample_rate_hz(), &mut features);
    }
    debug_assert_eq!(features.len(), FEATURE_DIM);
    features
}

fn push_channel_features(signal: &[f64], sample_rate_hz: f64, out: &mut Vec<f64>) {
    let n = signal.len() as f64;
    let mean = sum_ordered(signal.iter().copied()) / n;
    let var = sum_ordered(signal.iter().map(|v| (v - mean).powi(2))) / n;
    let std = var.sqrt();

    // Mean-crossing rate (normalized to [0, 1]).
    let mut crossings = 0usize;
    for pair in signal.windows(2) {
        if (pair[0] - mean).signum() != (pair[1] - mean).signum() {
            crossings += 1;
        }
    }
    let mcr = crossings as f64 / (signal.len() - 1).max(1) as f64;

    // Dominant-frequency power ratio via a small Goertzel bank over the
    // gait band (0.5–5 Hz). Reported as dominant bin frequency normalized
    // by the Nyquist rate, weighted by its share of band power.
    let (dom_freq, dom_share) = dominant_frequency(signal, mean, sample_rate_hz);
    let dom = dom_freq / (sample_rate_hz / 2.0) * dom_share;

    out.push(mean);
    out.push(std);
    out.push(mcr);
    out.push(dom);
}

/// Goertzel power at candidate gait frequencies; returns the strongest
/// frequency and its share of the total band power.
fn dominant_frequency(signal: &[f64], mean: f64, sample_rate_hz: f64) -> (f64, f64) {
    const BANK_HZ: [f64; 10] = [0.6, 0.9, 1.1, 1.4, 1.6, 1.9, 2.3, 2.7, 3.1, 3.6];
    let mut best = (0.0, 0.0);
    let mut total = 0.0;
    for &freq in &BANK_HZ {
        let p = goertzel_power(signal, mean, freq, sample_rate_hz);
        total += p;
        if p > best.1 {
            best = (freq, p);
        }
    }
    if total <= 0.0 {
        (0.0, 0.0)
    } else {
        (best.0, best.1 / total)
    }
}

fn goertzel_power(signal: &[f64], mean: f64, freq_hz: f64, sample_rate_hz: f64) -> f64 {
    let w = core::f64::consts::TAU * freq_hz / sample_rate_hz;
    let coeff = 2.0 * w.cos();
    let (mut s_prev, mut s_prev2) = (0.0, 0.0);
    for &x in signal {
        let s = (x - mean) + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    (s_prev2.powi(2) + s_prev.powi(2) - coeff * s_prev * s_prev2).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imu::ImuConfig;
    use crate::signature::SignatureTable;
    use crate::user::UserProfile;
    use origin_types::{ActivityClass, SensorLocation, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn window(activity: ActivityClass, location: SensorLocation, seed: u64) -> ImuWindow {
        let table = SignatureTable::calibrated();
        let mut rng = StdRng::seed_from_u64(seed);
        ImuWindow::synthesize(
            table.signature(activity, location),
            &UserProfile::nominal(UserId::new(0)),
            &ImuConfig::mhealth_like(),
            activity,
            &mut rng,
        )
    }

    #[test]
    fn feature_vector_has_fixed_dim() {
        let w = window(ActivityClass::Cycling, SensorLocation::LeftAnkle, 1);
        assert_eq!(window_features(&w).len(), FEATURE_DIM);
    }

    #[test]
    fn features_are_deterministic() {
        let w = window(ActivityClass::Running, SensorLocation::Chest, 2);
        assert_eq!(window_features(&w), window_features(&w));
    }

    #[test]
    fn gravity_appears_in_mean_feature() {
        let w = window(ActivityClass::Walking, SensorLocation::Chest, 3);
        let f = window_features(&w);
        // Channel 2 (accel z) mean is feature index 2 * FEATURES_PER_CHANNEL.
        let z_mean = f[2 * FEATURES_PER_CHANNEL];
        assert!((z_mean - 9.8).abs() < 1.0, "z mean = {z_mean}");
    }

    #[test]
    fn running_is_more_intense_than_walking_at_ankle() {
        // Compare the accel-magnitude std feature (last channel, feature 1).
        let run = window(ActivityClass::Running, SensorLocation::LeftAnkle, 4);
        let walk = window(ActivityClass::Walking, SensorLocation::LeftAnkle, 4);
        let idx = 6 * FEATURES_PER_CHANNEL + 1;
        assert!(window_features(&run)[idx] > window_features(&walk)[idx]);
    }

    #[test]
    fn goertzel_finds_injected_tone() {
        let fs = 50.0;
        let f0 = 1.9;
        let signal: Vec<f64> = (0..128)
            .map(|i| (core::f64::consts::TAU * f0 * i as f64 / fs).sin())
            .collect();
        let (freq, share) = dominant_frequency(&signal, 0.0, fs);
        assert!((freq - 1.9).abs() < 1e-9, "freq = {freq}");
        assert!(share > 0.5, "share = {share}");
    }

    #[test]
    fn flat_signal_has_zero_dominant_share() {
        let signal = vec![3.0; 64];
        let (freq, share) = dominant_frequency(&signal, 3.0, 50.0);
        assert_eq!(freq, 0.0);
        assert_eq!(share, 0.0);
    }
}

#[cfg(test)]
mod pamap2_tests {
    use super::*;
    use crate::dataset::{sample_window, DatasetSpec};
    use crate::user::UserProfile;
    use origin_types::{ActivityClass, SensorLocation, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The feature vector is the classifier contract: its width must not
    /// depend on the dataset's sampling rate or window length, so one
    /// classifier architecture serves both dataset analogues.
    #[test]
    fn feature_dim_is_invariant_across_datasets() {
        let user = UserProfile::nominal(UserId::new(0));
        for spec in [DatasetSpec::mhealth_like(), DatasetSpec::pamap2_like()] {
            let mut rng = StdRng::seed_from_u64(9);
            let w = sample_window(
                &spec,
                ActivityClass::Running,
                SensorLocation::LeftAnkle,
                &user,
                &mut rng,
            );
            assert_eq!(window_features(&w).len(), FEATURE_DIM, "{}", spec.name);
        }
    }

    /// PAMAP2's 128-sample windows still resolve the same gait band.
    #[test]
    fn dominant_frequency_resolves_at_100hz() {
        let fs = 100.0;
        let signal: Vec<f64> = (0..128)
            .map(|i| (core::f64::consts::TAU * 2.7 * i as f64 / fs).sin())
            .collect();
        let (freq, share) = dominant_frequency(&signal, 0.0, fs);
        assert!((freq - 2.7).abs() < 1e-9, "freq = {freq}");
        assert!(share > 0.4, "share = {share}");
    }
}
