//! Per-user gait variation.
//!
//! "Each user has unique expressions of behaviour classes reflected in the
//! sensor data. For example, gaits of two different people may
//! significantly vary" (Section III-C). A [`UserProfile`] perturbs the
//! population-level [`ActivitySignature`](crate::ActivitySignature) with
//! multiplicative frequency/amplitude scaling, a phase offset and extra
//! noise, all derived deterministically from a seed.

use origin_types::UserId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A user's idiosyncratic motion characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserProfile {
    /// Who this profile belongs to.
    pub user: UserId,
    /// Multiplies every signature's fundamental frequency.
    pub freq_scale: f64,
    /// Multiplies every signature's oscillation amplitudes.
    pub amp_scale: f64,
    /// Constant phase offset, radians.
    pub phase: f64,
    /// Multiplies every signature's noise std.
    pub noise_scale: f64,
}

impl UserProfile {
    /// The canonical "training population" profile: no deviation.
    #[must_use]
    pub fn nominal(user: UserId) -> Self {
        Self {
            user,
            freq_scale: 1.0,
            amp_scale: 1.0,
            phase: 0.0,
            noise_scale: 1.0,
        }
    }

    /// A mildly varied profile, representative of users inside the
    /// training distribution. `spread` 0.05–0.10 is typical.
    ///
    /// # Panics
    ///
    /// Panics when `spread` is negative or ≥ 0.5 (scales must stay
    /// positive).
    #[must_use]
    pub fn sampled(user: UserId, spread: f64, seed: u64) -> Self {
        assert!(
            (0.0..0.5).contains(&spread),
            "spread must be in [0, 0.5), got {spread}"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(user.as_u32()) << 32));
        fn scale(rng: &mut StdRng, s: f64) -> f64 {
            1.0 + s * (rng.gen::<f64>() * 2.0 - 1.0)
        }
        let freq_scale = scale(&mut rng, spread);
        let amp_scale = scale(&mut rng, spread * 1.5);
        let phase = rng.gen::<f64>() * core::f64::consts::TAU;
        let noise_scale = scale(&mut rng, spread);
        Self {
            user,
            freq_scale,
            amp_scale,
            phase,
            noise_scale,
        }
    }

    /// A previously-unseen user, outside the training distribution — the
    /// Fig. 6 subjects. Deviations are roughly 1.5× the training spread.
    #[must_use]
    pub fn unseen(user: UserId, seed: u64) -> Self {
        let mut p = Self::sampled(user, 0.12, seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Unseen users also move a little noisier overall.
        p.noise_scale *= 1.08;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_identity() {
        let p = UserProfile::nominal(UserId::new(0));
        assert_eq!(p.freq_scale, 1.0);
        assert_eq!(p.amp_scale, 1.0);
        assert_eq!(p.phase, 0.0);
        assert_eq!(p.noise_scale, 1.0);
    }

    #[test]
    fn sampled_is_deterministic_per_user_and_seed() {
        let a = UserProfile::sampled(UserId::new(1), 0.1, 7);
        let b = UserProfile::sampled(UserId::new(1), 0.1, 7);
        assert_eq!(a, b);
        let c = UserProfile::sampled(UserId::new(2), 0.1, 7);
        assert_ne!(a, c);
        let d = UserProfile::sampled(UserId::new(1), 0.1, 8);
        assert_ne!(a, d);
    }

    #[test]
    fn sampled_stays_within_spread() {
        for u in 0..20 {
            let p = UserProfile::sampled(UserId::new(u), 0.1, 3);
            assert!((p.freq_scale - 1.0).abs() <= 0.1 + 1e-12);
            assert!((p.amp_scale - 1.0).abs() <= 0.15 + 1e-12);
            assert!((p.noise_scale - 1.0).abs() <= 0.1 + 1e-12);
            assert!(p.freq_scale > 0.0 && p.amp_scale > 0.0);
        }
    }

    #[test]
    fn unseen_users_deviate_more_than_training_spread() {
        let deviations: Vec<f64> = (0..50)
            .map(|u| {
                let p = UserProfile::unseen(UserId::new(u), 11);
                (p.freq_scale - 1.0).abs() + (p.amp_scale - 1.0).abs()
            })
            .collect();
        let mean_dev = deviations.iter().sum::<f64>() / deviations.len() as f64;
        assert!(
            mean_dev > 0.1,
            "unseen users too close to nominal: {mean_dev}"
        );
    }

    #[test]
    #[should_panic(expected = "spread")]
    fn bad_spread_panics() {
        let _ = UserProfile::sampled(UserId::new(0), 0.6, 0);
    }
}
