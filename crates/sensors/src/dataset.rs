//! Labelled train/test feature datasets per sensor location.

use crate::features::window_features;
use crate::imu::ImuConfig;
use crate::signature::SignatureTable;
use crate::user::UserProfile;
use crate::window::ImuWindow;
use origin_types::{ActivityClass, ActivitySet, SensorLocation, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One labelled feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledSample {
    /// The extracted feature vector ([`FEATURE_DIM`](crate::FEATURE_DIM)
    /// long).
    pub features: Vec<f64>,
    /// Dense label index within the dataset's [`ActivitySet`].
    pub dense_label: usize,
    /// The ground-truth activity.
    pub activity: ActivityClass,
}

/// Train/test split for one sensor location.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SensorDataset {
    /// Training samples.
    pub train: Vec<LabeledSample>,
    /// Held-out test samples.
    pub test: Vec<LabeledSample>,
}

/// Everything needed to generate a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable dataset name ("mhealth-like" / "pamap2-like").
    pub name: &'static str,
    /// The activity classes evaluated.
    pub activities: ActivitySet,
    /// IMU sampling configuration.
    pub imu: ImuConfig,
    /// The (activity × location) motion models.
    pub signatures: SignatureTable,
    /// Training windows generated per class per location.
    pub train_windows_per_class: usize,
    /// Test windows generated per class per location.
    pub test_windows_per_class: usize,
    /// Number of distinct training users blended into the training set.
    pub train_users: u32,
    /// Training-population gait spread (see [`UserProfile::sampled`]).
    pub user_spread: f64,
    /// Dataset-level multiplier on every signature's sensor noise
    /// (PAMAP2's wearables are noisier than MHEALTH's Shimmer units).
    pub sensor_noise_scale: f64,
}

impl DatasetSpec {
    /// MHEALTH-analogue: 6 activities, 50 Hz.
    #[must_use]
    pub fn mhealth_like() -> Self {
        Self {
            name: "mhealth-like",
            activities: ActivitySet::mhealth(),
            imu: ImuConfig::mhealth_like(),
            signatures: SignatureTable::calibrated(),
            train_windows_per_class: 90,
            test_windows_per_class: 40,
            train_users: 6,
            user_spread: 0.08,
            sensor_noise_scale: 1.0,
        }
    }

    /// PAMAP2-analogue: 5 activities (no jogging), 100 Hz.
    #[must_use]
    pub fn pamap2_like() -> Self {
        Self {
            name: "pamap2-like",
            activities: ActivitySet::pamap2(),
            imu: ImuConfig::pamap2_like(),
            signatures: SignatureTable::calibrated(),
            train_windows_per_class: 90,
            test_windows_per_class: 40,
            train_users: 6,
            user_spread: 0.08,
            sensor_noise_scale: 1.3,
        }
    }

    /// Overrides the per-class window counts. Builder-style.
    #[must_use]
    pub fn with_windows(mut self, train: usize, test: usize) -> Self {
        self.train_windows_per_class = train;
        self.test_windows_per_class = test;
        self
    }
}

/// Generated datasets for all three sensor locations.
#[derive(Debug, Clone, PartialEq)]
pub struct HarDataset {
    activities: ActivitySet,
    sensors: [SensorDataset; SensorLocation::COUNT],
}

impl HarDataset {
    /// Generates the full dataset deterministically from `seed`.
    ///
    /// Training samples blend `spec.train_users` sampled user profiles;
    /// test samples come from a disjoint set of equally many profiles, so
    /// the held-out accuracy already reflects mild user shift (the *large*
    /// shift of genuinely unseen users is modelled by
    /// [`UserProfile::unseen`]).
    #[must_use]
    pub fn generate(spec: &DatasetSpec, seed: u64) -> Self {
        let mut sensors: [SensorDataset; SensorLocation::COUNT] = Default::default();
        for location in SensorLocation::ALL {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (0xA5A5_0000u64 + location.index() as u64).wrapping_mul(0x9E37_79B9),
            );
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (dense_label, activity) in spec.activities.iter().enumerate() {
                for i in 0..spec.train_windows_per_class {
                    let user = UserProfile::sampled(
                        UserId::new(i as u32 % spec.train_users),
                        spec.user_spread,
                        seed,
                    );
                    train.push(Self::sample(
                        spec,
                        activity,
                        location,
                        dense_label,
                        &user,
                        &mut rng,
                    ));
                }
                for i in 0..spec.test_windows_per_class {
                    let user = UserProfile::sampled(
                        UserId::new(spec.train_users + i as u32 % spec.train_users),
                        spec.user_spread,
                        seed,
                    );
                    test.push(Self::sample(
                        spec,
                        activity,
                        location,
                        dense_label,
                        &user,
                        &mut rng,
                    ));
                }
            }
            sensors[location.index()] = SensorDataset { train, test };
        }
        Self {
            activities: spec.activities.clone(),
            sensors,
        }
    }

    fn sample(
        spec: &DatasetSpec,
        activity: ActivityClass,
        location: SensorLocation,
        dense_label: usize,
        user: &UserProfile,
        rng: &mut StdRng,
    ) -> LabeledSample {
        let window = sample_window(spec, activity, location, user, rng);
        LabeledSample {
            features: window_features(&window),
            dense_label,
            activity,
        }
    }

    /// The activity set the labels index into.
    #[must_use]
    pub fn activities(&self) -> &ActivitySet {
        &self.activities
    }

    /// The dataset for one sensor location.
    #[must_use]
    pub fn sensor(&self, location: SensorLocation) -> &SensorDataset {
        &self.sensors[location.index()]
    }
}

/// Synthesizes one raw window for `(activity, location, user)` using the
/// spec's signature table and IMU configuration.
///
/// The simulator uses this to produce the window a scheduled sensor
/// actually classifies at runtime; tests and Fig. 6 add noise on top.
pub fn sample_window<R: Rng + ?Sized>(
    spec: &DatasetSpec,
    activity: ActivityClass,
    location: SensorLocation,
    user: &UserProfile,
    rng: &mut R,
) -> ImuWindow {
    let mut effective = *user;
    effective.noise_scale *= spec.sensor_noise_scale;
    ImuWindow::synthesize(
        spec.signatures.signature(activity, location),
        &effective,
        &spec.imu,
        activity,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_DIM;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::mhealth_like().with_windows(4, 2);
        assert_eq!(
            HarDataset::generate(&spec, 9),
            HarDataset::generate(&spec, 9)
        );
    }

    #[test]
    fn counts_match_spec() {
        let spec = DatasetSpec::mhealth_like().with_windows(5, 3);
        let ds = HarDataset::generate(&spec, 1);
        for loc in SensorLocation::ALL {
            let s = ds.sensor(loc);
            assert_eq!(s.train.len(), 5 * 6);
            assert_eq!(s.test.len(), 3 * 6);
            assert!(s.train.iter().all(|s| s.features.len() == FEATURE_DIM));
        }
    }

    #[test]
    fn pamap2_has_five_classes() {
        let spec = DatasetSpec::pamap2_like().with_windows(2, 1);
        let ds = HarDataset::generate(&spec, 2);
        assert_eq!(ds.activities().len(), 5);
        let labels: std::collections::BTreeSet<usize> = ds
            .sensor(SensorLocation::Chest)
            .train
            .iter()
            .map(|s| s.dense_label)
            .collect();
        assert_eq!(labels.len(), 5);
        assert!(labels.iter().all(|&l| l < 5));
    }

    #[test]
    fn labels_align_with_activity_set() {
        let spec = DatasetSpec::mhealth_like().with_windows(2, 1);
        let ds = HarDataset::generate(&spec, 3);
        for s in &ds.sensor(SensorLocation::LeftAnkle).train {
            assert_eq!(ds.activities().dense_index(s.activity), Some(s.dense_label));
        }
    }

    #[test]
    fn different_locations_see_different_data() {
        let spec = DatasetSpec::mhealth_like().with_windows(2, 1);
        let ds = HarDataset::generate(&spec, 4);
        assert_ne!(
            ds.sensor(SensorLocation::Chest).train[0].features,
            ds.sensor(SensorLocation::LeftAnkle).train[0].features
        );
    }
}
