//! Property tests for the sensor substrate.

use origin_sensors::{
    add_noise_snr, sample_window, window_features, ActivityTimeline, DatasetSpec, TimelineConfig,
    UserProfile, FEATURE_DIM,
};
use origin_types::{ActivityClass, SensorLocation, SimDuration, SimTime, UserId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_features_are_finite_and_fixed_width(
        activity_idx in 0usize..6,
        location_idx in 0usize..3,
        user_seed in 0u64..500,
        window_seed in 0u64..500,
    ) {
        let spec = DatasetSpec::mhealth_like();
        let activity = ActivityClass::from_index(activity_idx).expect("valid");
        let location = SensorLocation::from_index(location_idx).expect("valid");
        let user = UserProfile::sampled(UserId::new(0), 0.1, user_seed);
        let mut rng = StdRng::seed_from_u64(window_seed);
        let window = sample_window(&spec, activity, location, &user, &mut rng);
        let features = window_features(&window);
        prop_assert_eq!(features.len(), FEATURE_DIM);
        prop_assert!(features.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn noise_injection_preserves_length_and_label(
        snr_db in -5.0f64..40.0,
        seed in 0u64..500,
    ) {
        let spec = DatasetSpec::mhealth_like();
        let user = UserProfile::nominal(UserId::new(0));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut window = sample_window(
            &spec,
            ActivityClass::Jogging,
            SensorLocation::RightWrist,
            &user,
            &mut rng,
        );
        let len = window.len();
        add_noise_snr(&mut window, snr_db, &mut rng);
        prop_assert_eq!(window.len(), len);
        prop_assert_eq!(window.activity(), ActivityClass::Jogging);
        let all_finite = window
            .samples()
            .iter()
            .all(|s| s.accel.iter().chain(&s.gyro).all(|v| v.is_finite()));
        prop_assert!(all_finite);
    }

    #[test]
    fn timeline_covers_horizon_without_gaps(
        seed in 0u64..1_000,
        horizon_secs in 10u64..2_000,
        dwell_scale in 0.2f64..3.0,
    ) {
        let cfg = TimelineConfig {
            dwell_scale,
            ..TimelineConfig::default()
        };
        let horizon = SimDuration::from_secs(horizon_secs);
        let tl = ActivityTimeline::generate(&cfg, seed, horizon);
        prop_assert!(tl.total_duration() >= horizon);
        // Contiguity and no zero-length spans.
        for pair in tl.spans().windows(2) {
            prop_assert_eq!(pair[0].end(), pair[1].start);
            prop_assert!(!pair[0].duration.is_zero());
            prop_assert_ne!(pair[0].activity, pair[1].activity);
        }
        // activity_at agrees with the span list at every boundary.
        for span in tl.spans() {
            prop_assert_eq!(tl.activity_at(span.start), span.activity);
        }
        let _ = tl.activity_at(SimTime::ZERO);
    }

    #[test]
    fn user_profiles_are_physical(
        user in 0u32..200,
        seed in 0u64..500,
        spread in 0.0f64..0.45,
    ) {
        let p = UserProfile::sampled(UserId::new(user), spread, seed);
        prop_assert!(p.freq_scale > 0.0);
        prop_assert!(p.amp_scale > 0.0);
        prop_assert!(p.noise_scale > 0.0);
        prop_assert!(p.phase.is_finite());
        let u = UserProfile::unseen(UserId::new(user), seed);
        prop_assert!(u.freq_scale > 0.0 && u.amp_scale > 0.0 && u.noise_scale > 0.0);
    }
}
