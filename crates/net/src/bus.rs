//! Deterministic store-and-forward message queues.

use crate::link::LinkModel;
use crate::message::Message;
use origin_telemetry::{Party, SimEvent, SimObserver};
use origin_types::{NodeId, SimTime};
use rand::Rng;
use std::collections::VecDeque;

/// An addressable participant on the body-area network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A sensor node.
    Node(NodeId),
    /// The battery-backed host device (phone).
    Host,
}

impl Endpoint {
    /// The telemetry mirror of this endpoint.
    #[must_use]
    pub fn party(self) -> Party {
        match self {
            Endpoint::Host => Party::Host,
            Endpoint::Node(id) => Party::Node(id),
        }
    }
}

/// A frame in transit.
#[derive(Debug, Clone, PartialEq)]
pub struct InFlight {
    /// Sender.
    pub from: Endpoint,
    /// The payload.
    pub message: Message,
    /// When the frame becomes deliverable at the destination.
    pub arrives_at: SimTime,
}

/// Store-and-forward queues between all endpoints over one shared
/// [`LinkModel`].
///
/// Frames sent at `t` become visible to [`MessageBus::poll`] at
/// `t + latency`, in send order. Dropped frames vanish at send time (the
/// radio energy was still spent by the sender — charged at the node).
#[derive(Debug, Clone)]
pub struct MessageBus {
    link: LinkModel,
    node_queues: Vec<VecDeque<InFlight>>,
    host_queue: VecDeque<InFlight>,
    sent: u64,
    dropped: u64,
    node_sent: Vec<u64>,
    node_dropped: Vec<u64>,
}

impl MessageBus {
    /// A bus connecting `node_count` nodes and the host.
    #[must_use]
    pub fn new(link: LinkModel, node_count: usize) -> Self {
        Self {
            link,
            node_queues: vec![VecDeque::new(); node_count],
            host_queue: VecDeque::new(),
            sent: 0,
            dropped: 0,
            node_sent: vec![0; node_count],
            node_dropped: vec![0; node_count],
        }
    }

    /// The shared link model.
    #[must_use]
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Total frames offered to the bus.
    #[must_use]
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Frames lost to the link.
    #[must_use]
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Frames offered by each node, indexed by node id (host traffic is
    /// not attributed here).
    #[must_use]
    pub fn sent_by_node(&self) -> &[u64] {
        &self.node_sent
    }

    /// Frames lost per sending node, indexed by node id.
    #[must_use]
    pub fn dropped_by_node(&self) -> &[u64] {
        &self.node_dropped
    }

    /// Sends `message` from `from` to `to` at time `now`. Returns whether
    /// the link delivered it (a dropped frame still cost the sender its
    /// transmit energy).
    ///
    /// # Panics
    ///
    /// Panics when `to` names a node outside the bus.
    pub fn send<R: Rng + ?Sized>(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        message: Message,
        now: SimTime,
        rng: &mut R,
    ) -> bool {
        self.send_observed(
            from,
            to,
            message,
            now,
            rng,
            &mut origin_telemetry::NoopObserver,
        )
    }

    /// [`MessageBus::send`] with telemetry: emits one
    /// [`SimEvent::MessageTx`] or [`SimEvent::MessageDrop`] per frame.
    /// The observer is a pure consumer — the link outcome and queues are
    /// identical to the unobserved path.
    ///
    /// # Panics
    ///
    /// Panics when `to` names a node outside the bus.
    pub fn send_observed<R: Rng + ?Sized, O: SimObserver>(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        message: Message,
        now: SimTime,
        rng: &mut R,
        observer: &mut O,
    ) -> bool {
        self.sent += 1;
        if let Endpoint::Node(id) = from {
            if let Some(count) = self.node_sent.get_mut(id.as_usize()) {
                *count += 1;
            }
        }
        let bytes = message.wire_size();
        if !self.link.delivers(rng) {
            self.dropped += 1;
            if let Endpoint::Node(id) = from {
                if let Some(count) = self.node_dropped.get_mut(id.as_usize()) {
                    *count += 1;
                }
            }
            observer.on_event(&SimEvent::MessageDrop {
                from: from.party(),
                to: to.party(),
                bytes,
                at_us: now.as_micros(),
            });
            return false;
        }
        observer.on_event(&SimEvent::MessageTx {
            from: from.party(),
            to: to.party(),
            bytes,
            at_us: now.as_micros(),
        });
        let frame = InFlight {
            from,
            message,
            arrives_at: now + self.link.latency(),
        };
        match to {
            Endpoint::Host => self.host_queue.push_back(frame),
            Endpoint::Node(id) => {
                let queue = self
                    .node_queues
                    .get_mut(id.as_usize())
                    .expect("destination node is on the bus");
                queue.push_back(frame);
            }
        }
        true
    }

    /// Drains every frame addressed to `endpoint` that has arrived by
    /// `now`, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics when `endpoint` names a node outside the bus.
    pub fn poll(&mut self, endpoint: Endpoint, now: SimTime) -> Vec<InFlight> {
        let queue = match endpoint {
            Endpoint::Host => &mut self.host_queue,
            Endpoint::Node(id) => self
                .node_queues
                .get_mut(id.as_usize())
                .expect("endpoint node is on the bus"),
        };
        let mut out = Vec::new();
        while let Some(front) = queue.front() {
            if front.arrives_at <= now {
                out.push(queue.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_types::{ActivityClass, SimDuration};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn report(node: u32) -> Message {
        Message::ClassificationReport {
            node: NodeId::new(node),
            activity: ActivityClass::Walking,
            confidence: 0.1,
        }
    }

    #[test]
    fn frames_arrive_after_latency() {
        let mut bus = MessageBus::new(LinkModel::reliable(), 2);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(bus.send(
            Endpoint::Node(NodeId::new(0)),
            Endpoint::Host,
            report(0),
            SimTime::ZERO,
            &mut rng,
        ));
        // Not yet visible before the latency elapses.
        assert!(bus.poll(Endpoint::Host, SimTime::from_millis(5)).is_empty());
        let delivered = bus.poll(Endpoint::Host, SimTime::from_millis(10));
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].from, Endpoint::Node(NodeId::new(0)));
        // Drained.
        assert!(bus
            .poll(Endpoint::Host, SimTime::from_millis(20))
            .is_empty());
    }

    #[test]
    fn frames_preserve_send_order() {
        let mut bus = MessageBus::new(LinkModel::reliable(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..3 {
            bus.send(
                Endpoint::Host,
                Endpoint::Node(NodeId::new(0)),
                Message::ActivationSignal {
                    target: NodeId::new(0),
                    anticipated: ActivityClass::from_index(i).unwrap(),
                },
                SimTime::from_millis(i as u64),
                &mut rng,
            );
        }
        let frames = bus.poll(Endpoint::Node(NodeId::new(0)), SimTime::from_secs(1));
        assert_eq!(frames.len(), 3);
        for (i, f) in frames.iter().enumerate() {
            match &f.message {
                Message::ActivationSignal { anticipated, .. } => {
                    assert_eq!(anticipated.index(), i);
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }

    #[test]
    fn lossy_link_counts_drops() {
        let link = LinkModel::new(SimDuration::from_millis(1), 0.5);
        let mut bus = MessageBus::new(link, 1);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            bus.send(
                Endpoint::Node(NodeId::new(0)),
                Endpoint::Host,
                report(0),
                SimTime::ZERO,
                &mut rng,
            );
        }
        assert_eq!(bus.sent_count(), 1000);
        let dropped = bus.dropped_count();
        assert!((350..650).contains(&dropped), "dropped = {dropped}");
        let delivered = bus.poll(Endpoint::Host, SimTime::from_secs(1)).len() as u64;
        assert_eq!(delivered + dropped, 1000);
        // The single sender owns every per-node count.
        assert_eq!(bus.sent_by_node(), &[1000]);
        assert_eq!(bus.dropped_by_node(), &[dropped]);
    }

    #[test]
    fn per_node_counters_attribute_senders() {
        let mut bus = MessageBus::new(LinkModel::reliable(), 3);
        let mut rng = StdRng::seed_from_u64(0);
        for (node, sends) in [(0u32, 2), (2u32, 1)] {
            for _ in 0..sends {
                bus.send(
                    Endpoint::Node(NodeId::new(node)),
                    Endpoint::Host,
                    report(node),
                    SimTime::ZERO,
                    &mut rng,
                );
            }
        }
        // Host-originated traffic is counted globally but not per node.
        bus.send(
            Endpoint::Host,
            Endpoint::Node(NodeId::new(1)),
            Message::ActivationSignal {
                target: NodeId::new(1),
                anticipated: ActivityClass::Walking,
            },
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(bus.sent_count(), 4);
        assert_eq!(bus.sent_by_node(), &[2, 0, 1]);
        assert_eq!(bus.dropped_by_node(), &[0, 0, 0]);
    }

    #[test]
    fn observed_send_emits_tx_and_drop_events() {
        use origin_telemetry::{EventKind, RecordingObserver};
        // Always-lossy link: every send is a drop.
        let lossy = LinkModel::new(SimDuration::from_millis(1), 1.0);
        let mut bus = MessageBus::new(lossy, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut rec = RecordingObserver::new();
        let delivered = bus.send_observed(
            Endpoint::Node(NodeId::new(0)),
            Endpoint::Host,
            report(0),
            SimTime::from_millis(2),
            &mut rng,
            &mut rec,
        );
        assert!(!delivered);
        assert_eq!(rec.count(EventKind::MessageDrop), 1);

        let mut reliable = MessageBus::new(LinkModel::reliable(), 1);
        assert!(reliable.send_observed(
            Endpoint::Node(NodeId::new(0)),
            Endpoint::Host,
            report(0),
            SimTime::from_millis(2),
            &mut rng,
            &mut rec,
        ));
        assert_eq!(rec.count(EventKind::MessageTx), 1);
        match rec.events().last().unwrap() {
            origin_telemetry::SimEvent::MessageTx { bytes, at_us, .. } => {
                assert_eq!(*bytes, 8);
                assert_eq!(*at_us, 2000);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "destination node")]
    fn unknown_destination_panics() {
        let mut bus = MessageBus::new(LinkModel::reliable(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        bus.send(
            Endpoint::Host,
            Endpoint::Node(NodeId::new(5)),
            report(0),
            SimTime::ZERO,
            &mut rng,
        );
    }
}
