//! Deterministic store-and-forward message queues.

use crate::link::LinkModel;
use crate::message::Message;
use origin_types::{NodeId, SimTime};
use rand::Rng;
use std::collections::VecDeque;

/// An addressable participant on the body-area network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A sensor node.
    Node(NodeId),
    /// The battery-backed host device (phone).
    Host,
}

/// A frame in transit.
#[derive(Debug, Clone, PartialEq)]
pub struct InFlight {
    /// Sender.
    pub from: Endpoint,
    /// The payload.
    pub message: Message,
    /// When the frame becomes deliverable at the destination.
    pub arrives_at: SimTime,
}

/// Store-and-forward queues between all endpoints over one shared
/// [`LinkModel`].
///
/// Frames sent at `t` become visible to [`MessageBus::poll`] at
/// `t + latency`, in send order. Dropped frames vanish at send time (the
/// radio energy was still spent by the sender — charged at the node).
#[derive(Debug, Clone)]
pub struct MessageBus {
    link: LinkModel,
    node_queues: Vec<VecDeque<InFlight>>,
    host_queue: VecDeque<InFlight>,
    sent: u64,
    dropped: u64,
}

impl MessageBus {
    /// A bus connecting `node_count` nodes and the host.
    #[must_use]
    pub fn new(link: LinkModel, node_count: usize) -> Self {
        Self {
            link,
            node_queues: vec![VecDeque::new(); node_count],
            host_queue: VecDeque::new(),
            sent: 0,
            dropped: 0,
        }
    }

    /// The shared link model.
    #[must_use]
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Total frames offered to the bus.
    #[must_use]
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Frames lost to the link.
    #[must_use]
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Sends `message` from `from` to `to` at time `now`. Returns whether
    /// the link delivered it (a dropped frame still cost the sender its
    /// transmit energy).
    ///
    /// # Panics
    ///
    /// Panics when `to` names a node outside the bus.
    pub fn send<R: Rng + ?Sized>(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        message: Message,
        now: SimTime,
        rng: &mut R,
    ) -> bool {
        self.sent += 1;
        if !self.link.delivers(rng) {
            self.dropped += 1;
            return false;
        }
        let frame = InFlight {
            from,
            message,
            arrives_at: now + self.link.latency(),
        };
        match to {
            Endpoint::Host => self.host_queue.push_back(frame),
            Endpoint::Node(id) => {
                let queue = self
                    .node_queues
                    .get_mut(id.as_usize())
                    .expect("destination node is on the bus");
                queue.push_back(frame);
            }
        }
        true
    }

    /// Drains every frame addressed to `endpoint` that has arrived by
    /// `now`, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics when `endpoint` names a node outside the bus.
    pub fn poll(&mut self, endpoint: Endpoint, now: SimTime) -> Vec<InFlight> {
        let queue = match endpoint {
            Endpoint::Host => &mut self.host_queue,
            Endpoint::Node(id) => self
                .node_queues
                .get_mut(id.as_usize())
                .expect("endpoint node is on the bus"),
        };
        let mut out = Vec::new();
        while let Some(front) = queue.front() {
            if front.arrives_at <= now {
                out.push(queue.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_types::{ActivityClass, SimDuration};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn report(node: u32) -> Message {
        Message::ClassificationReport {
            node: NodeId::new(node),
            activity: ActivityClass::Walking,
            confidence: 0.1,
        }
    }

    #[test]
    fn frames_arrive_after_latency() {
        let mut bus = MessageBus::new(LinkModel::reliable(), 2);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(bus.send(
            Endpoint::Node(NodeId::new(0)),
            Endpoint::Host,
            report(0),
            SimTime::ZERO,
            &mut rng,
        ));
        // Not yet visible before the latency elapses.
        assert!(bus.poll(Endpoint::Host, SimTime::from_millis(5)).is_empty());
        let delivered = bus.poll(Endpoint::Host, SimTime::from_millis(10));
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].from, Endpoint::Node(NodeId::new(0)));
        // Drained.
        assert!(bus.poll(Endpoint::Host, SimTime::from_millis(20)).is_empty());
    }

    #[test]
    fn frames_preserve_send_order() {
        let mut bus = MessageBus::new(LinkModel::reliable(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..3 {
            bus.send(
                Endpoint::Host,
                Endpoint::Node(NodeId::new(0)),
                Message::ActivationSignal {
                    target: NodeId::new(0),
                    anticipated: ActivityClass::from_index(i).unwrap(),
                },
                SimTime::from_millis(i as u64),
                &mut rng,
            );
        }
        let frames = bus.poll(Endpoint::Node(NodeId::new(0)), SimTime::from_secs(1));
        assert_eq!(frames.len(), 3);
        for (i, f) in frames.iter().enumerate() {
            match &f.message {
                Message::ActivationSignal { anticipated, .. } => {
                    assert_eq!(anticipated.index(), i);
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }

    #[test]
    fn lossy_link_counts_drops() {
        let link = LinkModel::new(SimDuration::from_millis(1), 0.5);
        let mut bus = MessageBus::new(link, 1);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            bus.send(
                Endpoint::Node(NodeId::new(0)),
                Endpoint::Host,
                report(0),
                SimTime::ZERO,
                &mut rng,
            );
        }
        assert_eq!(bus.sent_count(), 1000);
        let dropped = bus.dropped_count();
        assert!((350..650).contains(&dropped), "dropped = {dropped}");
        let delivered = bus.poll(Endpoint::Host, SimTime::from_secs(1)).len() as u64;
        assert_eq!(delivered + dropped, 1000);
    }

    #[test]
    #[should_panic(expected = "destination node")]
    fn unknown_destination_panics() {
        let mut bus = MessageBus::new(LinkModel::reliable(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        bus.send(
            Endpoint::Host,
            Endpoint::Node(NodeId::new(5)),
            report(0),
            SimTime::ZERO,
            &mut rng,
        );
    }
}
