//! Byte-level frame codec.
//!
//! [`Message::wire_size`](crate::Message::wire_size) quotes the encoded
//! length; this module provides the actual encoding, so the "a few bytes
//! of data" assumption is backed by a real byte layout rather than a
//! constant. Confidence values travel as `f32` — the extra precision of
//! `f64` is below the sensor's own noise floor and costs four bytes per
//! report.
//!
//! Layout (all little-endian):
//!
//! ```text
//! report:     [0x01, node, class, conf_f32 x4, crc8, 0x00]
//! activation: [0x02, target, class, crc8]
//! rank:       [0x03, class, n, node x n, crc8 ...padding to wire_size]
//! ```

use crate::message::Message;
use origin_types::{ActivityClass, NodeId};

/// Errors produced while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer is too short for its frame type.
    Truncated,
    /// Unknown frame-type byte.
    UnknownKind(u8),
    /// A class or node field is out of range.
    BadField(&'static str),
    /// The checksum does not match.
    BadChecksum,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            CodecError::BadField(which) => write!(f, "invalid frame field `{which}`"),
            CodecError::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Simple CRC-8 (polynomial 0x07) over a byte slice.
#[must_use]
fn crc8(bytes: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in bytes {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Encodes `message` to its wire bytes.
///
/// The result's length always equals
/// [`Message::wire_size`](crate::Message::wire_size).
#[must_use]
pub fn encode(message: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(message.wire_size());
    match message {
        Message::ClassificationReport {
            node,
            activity,
            confidence,
        } => {
            out.push(0x01);
            out.push(node.as_u32() as u8);
            out.push(activity.index() as u8);
            out.extend_from_slice(&(*confidence as f32).to_le_bytes());
        }
        Message::ActivationSignal {
            target,
            anticipated,
        } => {
            out.push(0x02);
            out.push(target.as_u32() as u8);
            out.push(anticipated.index() as u8);
        }
        Message::RankUpdate { activity, ranking } => {
            out.push(0x03);
            out.push(activity.index() as u8);
            for node in ranking {
                out.push(node.as_u32() as u8);
            }
        }
    }
    out.push(crc8(&out));
    // Pad to the quoted wire size (frame alignment).
    while out.len() < message.wire_size() {
        out.push(0x00);
    }
    debug_assert_eq!(out.len(), message.wire_size());
    out
}

/// Decodes wire bytes produced by [`encode`].
///
/// # Errors
///
/// Returns a [`CodecError`] describing the first malformation found.
pub fn decode(bytes: &[u8]) -> Result<Message, CodecError> {
    let kind = *bytes.first().ok_or(CodecError::Truncated)?;
    let class_at = |idx: usize| -> Result<ActivityClass, CodecError> {
        let raw = *bytes.get(idx).ok_or(CodecError::Truncated)? as usize;
        ActivityClass::from_index(raw).ok_or(CodecError::BadField("class"))
    };
    let check = |payload_len: usize| -> Result<(), CodecError> {
        let expected = *bytes.get(payload_len).ok_or(CodecError::Truncated)?;
        if crc8(&bytes[..payload_len]) == expected {
            Ok(())
        } else {
            Err(CodecError::BadChecksum)
        }
    };
    match kind {
        0x01 => {
            if bytes.len() < 8 {
                return Err(CodecError::Truncated);
            }
            check(7)?;
            let node = NodeId::new(u32::from(bytes[1]));
            let activity = class_at(2)?;
            let confidence =
                f64::from(f32::from_le_bytes([bytes[3], bytes[4], bytes[5], bytes[6]]));
            if !(confidence.is_finite() && confidence >= 0.0) {
                return Err(CodecError::BadField("confidence"));
            }
            Ok(Message::ClassificationReport {
                node,
                activity,
                confidence,
            })
        }
        0x02 => {
            if bytes.len() < 4 {
                return Err(CodecError::Truncated);
            }
            check(3)?;
            Ok(Message::ActivationSignal {
                target: NodeId::new(u32::from(bytes[1])),
                anticipated: class_at(2)?,
            })
        }
        0x03 => {
            // Everything between the class byte and the trailing crc is
            // the ranking.
            if bytes.len() < 4 {
                return Err(CodecError::Truncated);
            }
            let payload_len = bytes.len() - 1;
            check(payload_len)?;
            let activity = class_at(1)?;
            let ranking = bytes[2..payload_len]
                .iter()
                .map(|&b| NodeId::new(u32::from(b)))
                .collect();
            Ok(Message::RankUpdate { activity, ranking })
        }
        other => Err(CodecError::UnknownKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Message> {
        vec![
            Message::ClassificationReport {
                node: NodeId::new(2),
                activity: ActivityClass::Cycling,
                confidence: 0.09375, // exactly representable in f32
            },
            Message::ActivationSignal {
                target: NodeId::new(1),
                anticipated: ActivityClass::Jumping,
            },
            Message::RankUpdate {
                activity: ActivityClass::Walking,
                ranking: vec![NodeId::new(1), NodeId::new(0), NodeId::new(2)],
            },
        ]
    }

    #[test]
    fn roundtrip_all_frame_kinds() {
        for frame in frames() {
            let bytes = encode(&frame);
            assert_eq!(bytes.len(), frame.wire_size(), "{frame:?} size mismatch");
            let back = decode(&bytes).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn confidence_survives_f32_narrowing_within_tolerance() {
        let frame = Message::ClassificationReport {
            node: NodeId::new(0),
            activity: ActivityClass::Running,
            confidence: 0.123_456_789,
        };
        let back = decode(&encode(&frame)).unwrap();
        match back {
            Message::ClassificationReport { confidence, .. } => {
                assert!((confidence - 0.123_456_789).abs() < 1e-6);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn corruption_is_detected() {
        for frame in frames() {
            let mut bytes = encode(&frame);
            bytes[1] ^= 0xFF;
            let err = decode(&bytes).unwrap_err();
            assert!(
                matches!(err, CodecError::BadChecksum | CodecError::BadField(_)),
                "{frame:?}: {err}"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        for frame in frames() {
            let bytes = encode(&frame);
            for cut in 0..bytes.len().min(3) {
                assert!(decode(&bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert_eq!(decode(&[0x7F, 0, 0, 0]), Err(CodecError::UnknownKind(0x7F)));
    }

    #[test]
    fn crc8_catches_single_bit_flips() {
        let data = [0x01u8, 0x02, 0x03, 0x04];
        let base = crc8(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data;
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc8(&flipped), base, "flip {byte}.{bit} undetected");
            }
        }
    }
}
