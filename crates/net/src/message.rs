//! The frames exchanged between sensor nodes and the host.

use origin_types::{ActivityClass, NodeId};

/// A frame on the body-area network.
///
/// Wire sizes are the small fixed encodings an embedded implementation
/// would use; they feed the per-byte radio energy costs.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A sensor reports a completed classification to the host, carrying
    /// the confidence score the adaptive ensemble consumes.
    ClassificationReport {
        /// Reporting node.
        node: NodeId,
        /// Predicted activity.
        activity: ActivityClass,
        /// Softmax-variance confidence of the prediction.
        confidence: f64,
    },
    /// The AAS hand-off: the node that just classified signals the
    /// best-ranked sensor for the anticipated activity to wake and take
    /// the next inference (Section III-B).
    ActivationSignal {
        /// Node being activated.
        target: NodeId,
        /// The anticipated activity (the current classification).
        anticipated: ActivityClass,
    },
    /// Host pushes an updated rank-table row to a node (rank maintenance
    /// traffic; a few bytes, sent rarely).
    RankUpdate {
        /// Activity whose ranking changed.
        activity: ActivityClass,
        /// Node ids, best first.
        ranking: Vec<NodeId>,
    },
}

impl Message {
    /// Encoded size in bytes.
    ///
    /// Report: 1 node + 1 class + 4 confidence (f32 on the wire) + 2
    /// header. Activation: 1 target + 1 class + 2 header. Rank update: 1
    /// class + n nodes + 2 header.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        match self {
            Message::ClassificationReport { .. } => 8,
            Message::ActivationSignal { .. } => 4,
            Message::RankUpdate { ranking, .. } => 3 + ranking.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_are_a_few_bytes() {
        let report = Message::ClassificationReport {
            node: NodeId::new(0),
            activity: ActivityClass::Walking,
            confidence: 0.12,
        };
        let signal = Message::ActivationSignal {
            target: NodeId::new(1),
            anticipated: ActivityClass::Running,
        };
        let rank = Message::RankUpdate {
            activity: ActivityClass::Cycling,
            ranking: vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
        };
        // "A few bytes" (Section IV-A): every frame is tiny.
        for m in [&report, &signal, &rank] {
            assert!(m.wire_size() <= 16, "{m:?} too large");
            assert!(m.wire_size() >= 3);
        }
        assert_eq!(report.wire_size(), 8);
        assert_eq!(signal.wire_size(), 4);
        assert_eq!(rank.wire_size(), 6);
    }
}
