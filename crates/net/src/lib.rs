//! Wireless-link substrate for the Origin reproduction.
//!
//! Each sensor node carries "a wireless communication module (BLE or WiFi)
//! to connect to a host device" (Section IV-A). The paper assumes this
//! traffic is negligible — "it infrequently sends a few bytes of data to
//! the host" — and this crate makes that assumption *checkable* rather
//! than baked in: every message has a concrete wire size, links charge
//! per-byte energy (through the node cost tables) and can drop or delay
//! messages.
//!
//! * [`Message`] — the three frames the system exchanges;
//! * [`LinkModel`] — per-link latency and loss;
//! * [`MessageBus`] — deterministic store-and-forward queues between the
//!   nodes and the host.
//!
//! # Examples
//!
//! ```
//! use origin_net::{Endpoint, LinkModel, Message, MessageBus};
//! use origin_types::{ActivityClass, NodeId, SimTime};
//!
//! let mut bus = MessageBus::new(LinkModel::reliable(), 3);
//! let frame = Message::ActivationSignal {
//!     target: NodeId::new(1),
//!     anticipated: ActivityClass::Walking,
//! };
//! bus.send(Endpoint::Node(NodeId::new(0)), Endpoint::Node(NodeId::new(1)), frame, SimTime::ZERO, &mut rand::thread_rng());
//! let delivered = bus.poll(Endpoint::Node(NodeId::new(1)), SimTime::from_millis(100));
//! assert_eq!(delivered.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bus;
mod codec;
mod link;
mod message;

pub use bus::{Endpoint, InFlight, MessageBus};
pub use codec::{decode, encode, CodecError};
pub use link::LinkModel;
pub use message::Message;
