//! Per-link latency and loss model.

use origin_types::SimDuration;
use rand::Rng;

/// A body-area radio link's delivery characteristics.
///
/// Energy is *not* charged here — the sending/receiving node pays through
/// its `EnergyCostTable` (in `origin-energy`) using the
/// message's wire size — this model covers timing and reliability only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    latency: SimDuration,
    drop_probability: f64,
}

impl LinkModel {
    /// A link with the given latency and drop probability.
    ///
    /// # Panics
    ///
    /// Panics when `drop_probability` ∉ `[0, 1]`.
    #[must_use]
    pub fn new(latency: SimDuration, drop_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability must be in [0, 1], got {drop_probability}"
        );
        Self {
            latency,
            drop_probability,
        }
    }

    /// An ideal link: 10 ms latency, no loss. The paper's default
    /// assumption.
    #[must_use]
    pub fn reliable() -> Self {
        Self::new(SimDuration::from_millis(10), 0.0)
    }

    /// A BLE-flavoured lossy link (30 ms, 2% loss) for robustness
    /// experiments.
    #[must_use]
    pub fn lossy_ble() -> Self {
        Self::new(SimDuration::from_millis(30), 0.02)
    }

    /// One-way delivery latency.
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Probability a frame is lost.
    #[must_use]
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// Rolls delivery for one frame.
    pub fn delivers<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.drop_probability == 0.0 {
            return true;
        }
        rng.gen::<f64>() >= self.drop_probability
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::reliable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reliable_link_always_delivers() {
        let link = LinkModel::reliable();
        let mut rng = StdRng::seed_from_u64(0);
        assert!((0..1000).all(|_| link.delivers(&mut rng)));
        assert_eq!(link.drop_probability(), 0.0);
        assert_eq!(link.latency(), SimDuration::from_millis(10));
    }

    #[test]
    fn lossy_link_drops_at_the_configured_rate() {
        let link = LinkModel::new(SimDuration::from_millis(30), 0.25);
        let mut rng = StdRng::seed_from_u64(1);
        let delivered = (0..10_000).filter(|_| link.delivers(&mut rng)).count();
        let rate = delivered as f64 / 10_000.0;
        assert!((rate - 0.75).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn default_is_reliable() {
        assert_eq!(LinkModel::default(), LinkModel::reliable());
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_probability_panics() {
        let _ = LinkModel::new(SimDuration::ZERO, 1.5);
    }
}
