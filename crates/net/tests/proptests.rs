//! Property tests for the network substrate.

use origin_net::{decode, encode, LinkModel, Message};
use origin_types::{ActivityClass, NodeId, SimDuration};
use proptest::prelude::*;

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (0u32..3, 0usize..6, 0.0f32..0.14).prop_map(|(node, class, conf)| {
            Message::ClassificationReport {
                node: NodeId::new(node),
                activity: ActivityClass::from_index(class).expect("valid"),
                confidence: f64::from(conf),
            }
        }),
        (0u32..3, 0usize..6).prop_map(|(node, class)| Message::ActivationSignal {
            target: NodeId::new(node),
            anticipated: ActivityClass::from_index(class).expect("valid"),
        }),
        (0usize..6, proptest::collection::vec(0u32..3, 1..4)).prop_map(|(class, nodes)| {
            Message::RankUpdate {
                activity: ActivityClass::from_index(class).expect("valid"),
                ranking: nodes.into_iter().map(NodeId::new).collect(),
            }
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrips(message in arb_message()) {
        let bytes = encode(&message);
        prop_assert_eq!(bytes.len(), message.wire_size());
        let back = decode(&bytes).expect("well-formed frame");
        // f64→f32→f64 narrowing: compare with tolerance on confidence.
        match (&message, &back) {
            (
                Message::ClassificationReport { node: a, activity: b, confidence: c },
                Message::ClassificationReport { node: x, activity: y, confidence: z },
            ) => {
                prop_assert_eq!(a, x);
                prop_assert_eq!(b, y);
                prop_assert!((c - z).abs() < 1e-6);
            }
            (a, b) => prop_assert_eq!(a, b),
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = decode(&bytes); // must return Err or Ok, never panic
    }

    #[test]
    fn link_drop_rate_is_calibrated(p in 0.0f64..1.0, seed in 0u64..100) {
        use rand::SeedableRng;
        let link = LinkModel::new(SimDuration::from_millis(1), p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 2_000;
        let delivered = (0..n).filter(|_| link.delivers(&mut rng)).count() as f64 / n as f64;
        prop_assert!((delivered - (1.0 - p)).abs() < 0.06, "p={p} delivered={delivered}");
    }
}
