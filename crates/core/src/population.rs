//! Sampled user populations for fleet-scale sweeps.
//!
//! An enumerated `--users N` grid evaluates a handful of cohort wearers;
//! a *population* sweep instead draws every wearer's parameters from
//! documented distributions, so `--population 1000000` describes one
//! million distinct (gait, harvest, duty, placement) combinations without
//! materializing anything per user. Four per-user factors are sampled
//! (see [`PopulationSpec`] for the exact distributions):
//!
//! * **gait** — the [`UserProfile`] frequency/amplitude/phase/noise
//!   deviations of Section III-C ("gaits of two different people may
//!   significantly vary");
//! * **harvest scale** — a log-normal multiplier on the deployment's
//!   per-location harvest power, modelling harvester placement and office
//!   RF conditions varying across wearers;
//! * **duty profile** — a uniform dwell-time scale: some users switch
//!   activities quickly, some dwell long;
//! * **body placement noise** — a per-user runtime sensing SNR in dB,
//!   modelling strap tightness and sensor placement quality.
//!
//! Sampling is a pure function of `(base_seed, user_idx)` through a
//! dedicated splitmix64 stream: it never touches the `rand` crate, so the
//! drawn population is identical on every platform and rand version, and
//! it is independent of the seed-replica axis — replica `s` of user `u`
//! re-runs the *same person* under a different simulated world, keeping
//! the seed axis a pure statistical replicate (the same pairing
//! discipline the sweep engine applies to the policy axis).

use origin_sensors::UserProfile;
use origin_types::UserId;

/// The golden-ratio increment of the splitmix64 sequence.
const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Domain separator: population sampling must not collide with the sweep
/// engine's per-cell stream derivation, which mixes the same base seed.
const POPULATION_DOMAIN: u64 = 0x0509_07A7_10AD_0A11;

/// A self-contained splitmix64 generator.
///
/// Deliberately *not* `rand`: population draws must be bit-identical
/// across platforms and dependency versions, because the drawn parameters
/// feed the bitwise-deterministic sweep manifests.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(SPLITMIX_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[-1, 1)`.
    fn next_signed(&mut self) -> f64 {
        self.next_f64() * 2.0 - 1.0
    }

    /// Standard normal via Box–Muller (one draw per call; the paired
    /// draw is discarded to keep the stream layout simple and fixed).
    fn next_normal(&mut self) -> f64 {
        // Guard the logarithm: remap [0, 1) to (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }
}

/// The per-user parameter distributions of a sampled population.
///
/// Every field documents its own distribution; [`PopulationSpec::default`]
/// is the calibrated population the `--population` mode ships with, and
/// DESIGN.md §11 records the rationale. All draws come from one
/// splitmix64 stream keyed by `(base_seed, user_idx)` — see
/// [`PopulationSpec::sample_user`].
///
/// # Examples
///
/// ```
/// use origin_core::PopulationSpec;
///
/// let spec = PopulationSpec::default();
/// let alice = spec.sample_user(77, 0);
/// let again = spec.sample_user(77, 0);
/// assert_eq!(alice, again); // pure function of (seed, user index)
/// assert_ne!(alice, spec.sample_user(77, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationSpec {
    /// Gait deviation spread: [`UserProfile`] frequency/noise scales are
    /// uniform in `1 ± gait_spread` and the amplitude scale in
    /// `1 ± 1.5·gait_spread` (mirroring [`UserProfile::sampled`]'s
    /// in-distribution cohort shape). Default `0.08`.
    pub gait_spread: f64,
    /// Harvest-scale log-normal sigma: the per-user multiplier on the
    /// deployment's harvest power is `exp(σ·z)`, `z ~ N(0, 1)` — median
    /// exactly `1.0` — clamped to `[0.25, 4.0]`. Default `0.35`.
    pub harvest_sigma: f64,
    /// Duty-profile spread: activity dwell times scale uniformly in
    /// `1 ± dwell_spread`. Default `0.3`.
    pub dwell_spread: f64,
    /// Mean of the per-user runtime sensing SNR in dB (body placement
    /// noise). Default `30.0`.
    pub snr_mean_db: f64,
    /// Standard deviation of the SNR draw in dB; the draw is clamped to
    /// `[10, 60]` dB. Default `5.0`.
    pub snr_std_db: f64,
}

impl Default for PopulationSpec {
    fn default() -> Self {
        Self {
            gait_spread: 0.08,
            harvest_sigma: 0.35,
            dwell_spread: 0.3,
            snr_mean_db: 30.0,
            snr_std_db: 5.0,
        }
    }
}

/// One sampled member of a population: a gait profile plus the
/// environment/placement factors a `SimConfig` applies around it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationUser {
    /// The wearer's gait deviations.
    pub profile: UserProfile,
    /// Multiplier on the deployment's per-location harvest power
    /// (`SimConfig::harvest_scale`); `1.0` is the calibrated office.
    pub harvest_scale: f64,
    /// Activity dwell-time scale (`SimConfig::dwell_scale`).
    pub dwell_scale: f64,
    /// Runtime sensing SNR in dB (`SimConfig::noise_snr_db`).
    pub snr_db: f64,
}

impl PopulationSpec {
    /// Draws user `user_idx` of the population under `base_seed`.
    ///
    /// Pure and stateless: the same `(base_seed, user_idx)` always yields
    /// the same user, on any platform, independent of how many users are
    /// sampled, in which order, or on which thread. The seed-replica axis
    /// deliberately does not enter the key, so every replica re-simulates
    /// the same person under a fresh world.
    ///
    /// Draw order is fixed (gait ×4, harvest, dwell, SNR); changing it
    /// would redraw the whole population and is a manifest-breaking
    /// change.
    #[must_use]
    pub fn sample_user(&self, base_seed: u64, user_idx: u32) -> PopulationUser {
        let key = base_seed ^ POPULATION_DOMAIN ^ u64::from(user_idx).wrapping_mul(SPLITMIX_GAMMA);
        let mut rng = SplitMix64::new(key);
        let freq_scale = 1.0 + self.gait_spread * rng.next_signed();
        let amp_scale = 1.0 + self.gait_spread * 1.5 * rng.next_signed();
        let phase = rng.next_f64() * core::f64::consts::TAU;
        let noise_scale = 1.0 + self.gait_spread * rng.next_signed();
        let harvest_scale = (self.harvest_sigma * rng.next_normal()).exp();
        let dwell_scale = 1.0 + self.dwell_spread * rng.next_signed();
        let snr_db = self.snr_mean_db + self.snr_std_db * rng.next_normal();
        PopulationUser {
            profile: UserProfile {
                user: UserId::new(user_idx),
                freq_scale,
                amp_scale,
                phase,
                noise_scale,
            },
            harvest_scale: harvest_scale.clamp(0.25, 4.0),
            dwell_scale: dwell_scale.max(0.05),
            snr_db: snr_db.clamp(10.0, 60.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let spec = PopulationSpec::default();
        let a = spec.sample_user(77, 42);
        assert_eq!(a, spec.sample_user(77, 42));
        assert_ne!(a, spec.sample_user(77, 43));
        assert_ne!(a, spec.sample_user(78, 42));
        assert_eq!(a.profile.user, UserId::new(42));
    }

    #[test]
    fn draws_respect_documented_bounds() {
        let spec = PopulationSpec::default();
        for u in 0..5_000 {
            let p = spec.sample_user(9, u);
            assert!((p.profile.freq_scale - 1.0).abs() <= spec.gait_spread + 1e-12);
            assert!((p.profile.amp_scale - 1.0).abs() <= 1.5 * spec.gait_spread + 1e-12);
            assert!((0.0..core::f64::consts::TAU).contains(&p.profile.phase));
            assert!((0.25..=4.0).contains(&p.harvest_scale));
            assert!((p.dwell_scale - 1.0).abs() <= spec.dwell_spread + 1e-12);
            assert!((10.0..=60.0).contains(&p.snr_db));
        }
    }

    #[test]
    fn harvest_scale_is_median_one_and_snr_centers_on_mean() {
        let spec = PopulationSpec::default();
        let n = 20_000u32;
        let below = (0..n)
            .filter(|&u| spec.sample_user(1, u).harvest_scale < 1.0)
            .count() as f64
            / f64::from(n);
        assert!(
            (below - 0.5).abs() < 0.02,
            "log-normal median drifted: {below}"
        );
        let snr_mean = (0..n).map(|u| spec.sample_user(1, u).snr_db).sum::<f64>() / f64::from(n);
        assert!(
            (snr_mean - spec.snr_mean_db).abs() < 0.2,
            "snr mean {snr_mean}"
        );
    }

    #[test]
    fn population_draw_ignores_the_seed_replica_axis() {
        // The key is (base_seed, user): the caller passes the same pair
        // for every seed replica, and nothing else perturbs the draw.
        let spec = PopulationSpec::default();
        let draws: Vec<PopulationUser> = (0..3).map(|_| spec.sample_user(5, 7)).collect();
        assert!(draws.windows(2).all(|w| w[0] == w[1]));
    }
}
