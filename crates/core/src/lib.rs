//! # origin-core — the Origin policy and its evaluation harness
//!
//! This crate implements the primary contribution of *Origin: Enabling
//! On-Device Intelligence for Human Activity Recognition Using Energy
//! Harvesting Wireless Sensor Networks* (DATE 2021) on top of the
//! workspace's substrates (traces, energy, sensors, NN, network):
//!
//! * **Extended round-robin (ER-r)** slot schedules ([`Slots`]) — RR3,
//!   RR6, RR9, RR12 per Fig. 3;
//! * **Activity-aware scheduling (AAS)** — the per-activity sensor
//!   [`RankTable`] and the best-available-sensor hand-off;
//! * **Recall (AASR)** — the host-side [`RecallStore`] that keeps every
//!   sensor's most recent classification in the ensemble;
//! * the **adaptive [`ConfidenceMatrix`]** — softmax-variance weights per
//!   (sensor × class), updated online by moving average, used for weighted
//!   majority voting ([`EnsembleKind::ConfidenceWeighted`]);
//! * the **discrete-time [`Simulator`]** that steps sensor energy state,
//!   scheduling, inference, communication and host aggregation together;
//! * the **baselines** (fully powered, majority voting; unpruned = BL-1,
//!   energy-aware-pruned = BL-2) and the [`experiments`] drivers that
//!   regenerate every figure and table in the paper.
//!
//! # Quickstart
//!
//! ```no_run
//! use origin_core::{Deployment, ModelBank, PolicyKind, SimConfig, Simulator};
//! use origin_sensors::DatasetSpec;
//! use origin_types::SimDuration;
//!
//! # fn main() -> Result<(), origin_core::CoreError> {
//! let spec = DatasetSpec::mhealth_like();
//! let models = ModelBank::<f64>::train(&spec, 42)?;
//! let deployment = Deployment::builder().seed(42).build();
//! let config = SimConfig::new(PolicyKind::Origin { cycle: 12 })
//!     .with_horizon(SimDuration::from_secs(3_600));
//! let report = Simulator::new(deployment, models).run(&config)?;
//! println!("top-1 accuracy: {:.2}%", report.accuracy() * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod baseline;
mod confidence;
mod deployment;
mod ensemble;
mod error;
pub mod experiments;
mod host;
mod models;
mod parallel;
mod policy;
mod population;
mod rank;
mod recall;
mod schedule;
mod sim;

pub use baseline::{
    fully_powered_simulator, run_baseline, run_baseline_on, BaselineKind, BaselineReport,
};
pub use confidence::ConfidenceMatrix;
pub use deployment::{Deployment, DeploymentBuilder};
pub use ensemble::{majority_vote, weighted_vote, EnsembleKind, Vote};
pub use error::CoreError;
pub use host::HostDevice;
pub use models::{ModelBank, ModelVariant};
pub use parallel::{available_threads, parallel_map};
pub use policy::{PolicyKind, PolicyState};
pub use population::{PopulationSpec, PopulationUser};
pub use rank::RankTable;
pub use recall::{RecallEntry, RecallStore};
pub use schedule::{SlotKind, Slots};
pub use sim::{EnergyBreakdown, SimConfig, SimReport, Simulator};
