//! The RR-depth sweet spot.
//!
//! "Further evaluations suggest Origin with RR-12 to be the best fit for
//! HAR. Going beyond RR-12 might lead to missing an activity window for
//! high intensity or rapid activities, and going below RR-12 might lead
//! to energy scarcity at times" (Section IV-C). This driver sweeps the
//! cycle depth well past 12 and reports where accuracy turns over, and
//! how fast activities (jumping) pay for excessive depth first.

use super::ExperimentContext;
use crate::error::CoreError;
use crate::policy::PolicyKind;
use origin_nn::Scalar;
use origin_types::ActivityClass;

/// One depth's operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthPoint {
    /// The ER-r cycle length.
    pub cycle: u8,
    /// Overall Origin accuracy.
    pub accuracy: f64,
    /// Accuracy on the fastest activity (jumping) — the first casualty of
    /// excessive depth.
    pub jumping_accuracy: f64,
    /// Completion rate.
    pub completion: f64,
}

/// The depth sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthSweep {
    /// Points in increasing depth order.
    pub points: Vec<DepthPoint>,
}

impl DepthSweep {
    /// The depth with the highest overall accuracy.
    ///
    /// # Panics
    ///
    /// Panics when the sweep is empty (the driver never produces one).
    #[must_use]
    pub fn best_cycle(&self) -> u8 {
        self.points
            .iter()
            .max_by(|a, b| {
                a.accuracy
                    .partial_cmp(&b.accuracy)
                    .expect("accuracies are finite")
            })
            .expect("sweep is non-empty")
            .cycle
    }
}

/// Sweeps Origin over `cycles` (must be multiples of three).
///
/// # Errors
///
/// Propagates simulation failures (including invalid cycles).
pub fn run_depth_sweep<S: Scalar>(
    ctx: &ExperimentContext<S>,
    cycles: &[u8],
) -> Result<DepthSweep, CoreError> {
    let sim = ctx.simulator();
    let mut points = Vec::with_capacity(cycles.len());
    for &cycle in cycles {
        let report = sim.run(&ctx.sim_config(PolicyKind::Origin { cycle }))?;
        points.push(DepthPoint {
            cycle,
            accuracy: report.accuracy(),
            jumping_accuracy: report
                .per_activity_accuracy(ActivityClass::Jumping)
                .unwrap_or(0.0),
            completion: report.completion_rate(),
        });
    }
    Ok(DepthSweep { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Dataset;
    use origin_types::SimDuration;

    #[test]
    fn completion_saturates_and_depth_stops_paying() {
        let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, 77)
            .unwrap()
            .with_horizon(SimDuration::from_secs(1_800));
        let sweep = run_depth_sweep(&ctx, &[3, 12, 36, 72]).unwrap();
        assert_eq!(sweep.points.len(), 4);
        // Completion rises monotonically with depth (more harvesting per
        // attempt) and is near-total by RR36.
        assert!(sweep.points[1].completion > sweep.points[0].completion);
        assert!(sweep.points[2].completion > 0.9);
        // But accuracy does NOT keep rising: once completion saturates,
        // extra depth only adds staleness. The best cycle is well below
        // the deepest swept.
        let rr12 = sweep.points[1].accuracy;
        let rr72 = sweep.points[3].accuracy;
        assert!(
            rr72 < rr12,
            "RR72 ({rr72}) should lose to RR12 ({rr12}) through staleness"
        );
        // The fast activity degrades at extreme depth relative to its
        // RR12 value — "missing an activity window".
        assert!(
            sweep.points[3].jumping_accuracy < sweep.points[1].jumping_accuracy + 0.02,
            "jumping at RR72 {} vs RR12 {}",
            sweep.points[3].jumping_accuracy,
            sweep.points[1].jumping_accuracy
        );
    }
}
