//! Experiment drivers that regenerate every figure and table in the
//! paper's evaluation (see DESIGN.md §5 for the index).
//!
//! Each driver returns plain data; the `origin-bench` binaries format it
//! into the paper-style rows. Everything is deterministic in the supplied
//! seed.

mod ablation;
mod cohort;
mod depth;
mod fig1;
mod fig2;
mod fig4;
mod fig5;
mod fig6;
mod power;
mod table1;

pub use ablation::{run_ablation, run_ablation_seeded, AblationReport};
pub use cohort::{cohort_user, run_cohort, run_cohort_seeded, CohortPoint, CohortReport};
pub use depth::{run_depth_sweep, DepthPoint, DepthSweep};
pub use fig1::{run_fig1, Fig1Result};
pub use fig2::{run_fig2, Fig2Result};
pub use fig4::{run_fig4, Fig4Result};
pub use fig5::{run_fig5, Fig5Result};
pub use fig6::{run_fig6, Fig6Result};
pub use power::{run_power_study, PowerReport, PowerRow};
pub use table1::{run_table1, Table1Result};

use crate::deployment::Deployment;
use crate::error::CoreError;
use crate::models::ModelBank;
use crate::policy::PolicyKind;
use crate::sim::{SimConfig, Simulator};
use origin_nn::{KernelPath, Scalar};
use origin_sensors::DatasetSpec;
use origin_types::SimDuration;
use std::sync::Arc;

/// Which dataset analogue an experiment evaluates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Six-class MHEALTH analogue (Figs. 2, 4, 5a, 6, Table I).
    Mhealth,
    /// Five-class PAMAP2 analogue (Fig. 5b).
    Pamap2,
}

impl Dataset {
    /// The generator spec for this dataset.
    #[must_use]
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Mhealth => DatasetSpec::mhealth_like(),
            Dataset::Pamap2 => DatasetSpec::pamap2_like(),
        }
    }

    /// Display name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Dataset::Mhealth => "MHEALTH",
            Dataset::Pamap2 => "PAMAP2",
        }
    }
}

/// Shared setup for the experiment drivers: a trained model bank plus the
/// calibrated EH deployment.
///
/// The models and deployment live behind [`Arc`], so cloning a context —
/// or handing one to a pool of sweep workers — shares a single trained
/// [`ModelBank`] instead of re-training (or deep-copying) per worker.
/// Training happens exactly once per `(dataset, seed)` in
/// [`ExperimentContext::new`].
///
/// The context carries the kernel precision of its bank
/// (`ExperimentContext<f32>` runs the whole pipeline on `f32` models);
/// every driver is generic over it and reports plain `f64` data either
/// way.
#[derive(Debug, Clone)]
pub struct ExperimentContext<S: Scalar = f64> {
    /// Which dataset analogue is loaded.
    pub dataset: Dataset,
    /// The trained models (shared; see the type-level docs).
    pub models: Arc<ModelBank<S>>,
    /// The energy-harvesting deployment (shared).
    pub deployment: Arc<Deployment>,
    /// Master seed.
    pub seed: u64,
    /// Per-policy simulated duration.
    pub horizon: SimDuration,
    /// The NN [`KernelPath`] every experiment's simulations dispatch to.
    /// Both paths are bitwise identical, so this never changes a result
    /// — it exists so `--kernel-path` A/B runs cover the whole
    /// reproduction pipeline.
    pub kernel_path: KernelPath,
}

impl<S: Scalar> ExperimentContext<S> {
    /// Default evaluation horizon (one simulated hour).
    pub const DEFAULT_HORIZON_SECS: u64 = 3_600;

    /// Trains models and builds the deployment for `dataset`.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn new(dataset: Dataset, seed: u64) -> Result<Self, CoreError> {
        let models = ModelBank::train(&dataset.spec(), seed)?;
        let deployment = Deployment::builder().seed(seed).build();
        Ok(Self::from_parts(dataset, models, deployment, seed))
    }

    /// [`ExperimentContext::new`] with kernel-level stage timing: the
    /// `nn_fit` / `nn_prune` / `nn_eval` wall-clock breakdown of model
    /// training lands in `timings` (see
    /// [`ModelBank::train_instrumented`]). The trained bank is bitwise
    /// identical to the untimed path.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn new_instrumented(
        dataset: Dataset,
        seed: u64,
        timings: &mut origin_telemetry::StageTimings,
    ) -> Result<Self, CoreError> {
        Self::new_instrumented_parallel(dataset, seed, 1, timings)
    }

    /// [`ExperimentContext::new_instrumented`] with model training fanned
    /// out over `threads` workers (one per sensor location; see
    /// [`ModelBank::train_instrumented_parallel`]). The trained bank is
    /// bitwise identical at every thread count.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn new_instrumented_parallel(
        dataset: Dataset,
        seed: u64,
        threads: usize,
        timings: &mut origin_telemetry::StageTimings,
    ) -> Result<Self, CoreError> {
        let budget = origin_types::Energy::from_microjoules(ModelBank::<S>::DEFAULT_BUDGET_UJ);
        let models = ModelBank::train_instrumented_parallel(
            &dataset.spec(),
            seed,
            budget,
            threads,
            timings,
        )?;
        let deployment = Deployment::builder().seed(seed).build();
        Ok(Self::from_parts(dataset, models, deployment, seed))
    }

    /// Wraps an already-trained bank and deployment (tests and benches
    /// use this to substitute smaller models).
    #[must_use]
    pub fn from_parts(
        dataset: Dataset,
        models: ModelBank<S>,
        deployment: Deployment,
        seed: u64,
    ) -> Self {
        Self {
            dataset,
            models: Arc::new(models),
            deployment: Arc::new(deployment),
            seed,
            horizon: SimDuration::from_secs(Self::DEFAULT_HORIZON_SECS),
            kernel_path: KernelPath::default(),
        }
    }

    /// Overrides the horizon (shorter for tests). Builder-style.
    #[must_use]
    pub fn with_horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Overrides the NN kernel path (default [`KernelPath::Unrolled`]).
    /// Builder-style. Every experiment's [`SimConfig`]s inherit it via
    /// [`ExperimentContext::sim_config`].
    #[must_use]
    pub fn with_kernel_path(mut self, path: KernelPath) -> Self {
        self.kernel_path = path;
        self
    }

    /// A [`SimConfig`] for `policy` carrying this context's horizon and
    /// kernel path — the one constructor every experiment goes through,
    /// so provenance knobs cannot be forgotten at an individual site.
    #[must_use]
    pub fn sim_config(&self, policy: PolicyKind) -> SimConfig {
        SimConfig::new(policy)
            .with_horizon(self.horizon)
            .with_seed(self.seed)
            .with_kernel_path(self.kernel_path)
    }

    /// A simulator bound to this context. Cheap: the deployment and
    /// models are shared with the context, not cloned.
    #[must_use]
    pub fn simulator(&self) -> Simulator<S> {
        Simulator::from_shared(Arc::clone(&self.deployment), Arc::clone(&self.models))
    }
}
