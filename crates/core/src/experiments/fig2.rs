//! Fig. 2 — per-sensor DNN accuracy and majority-voting ensemble per
//! activity (fully powered, MHEALTH).

use super::ExperimentContext;
use crate::ensemble::{majority_vote, Vote};
use crate::error::CoreError;
use crate::models::ModelVariant;
use origin_nn::{ConfusionMatrix, Scalar, Workspace};
use origin_sensors::{sample_window, window_features, UserProfile};
use origin_types::{ActivityClass, NodeId, SensorLocation, SimTime, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-activity accuracy of each sensor and of the majority ensemble.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Activities evaluated, in dense order.
    pub activities: Vec<ActivityClass>,
    /// `per_sensor[location][dense]` accuracy.
    pub per_sensor: Vec<Vec<f64>>,
    /// Majority-voting accuracy per dense class.
    pub majority: Vec<f64>,
    /// Confusion matrices per sensor (diagnostics).
    pub confusions: Vec<ConfusionMatrix>,
}

/// Evaluates the deployed (pruned) classifiers on freshly generated,
/// *aligned* evaluation windows: for each trial all three sensors observe
/// the same activity instant, as they would on a body.
///
/// # Errors
///
/// Propagates classification failures.
pub fn run_fig2<S: Scalar>(
    ctx: &ExperimentContext<S>,
    trials_per_class: usize,
) -> Result<Fig2Result, CoreError> {
    let activities: Vec<ActivityClass> = ctx.models.activities().iter().collect();
    let classes = activities.len();
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xF162);
    let mut ws = Workspace::with_kernel_path(ctx.kernel_path);
    let user = UserProfile::sampled(UserId::new(100), 0.08, ctx.seed);

    let mut confusions = vec![ConfusionMatrix::new(classes); SensorLocation::COUNT];
    let mut majority_cm = ConfusionMatrix::new(classes);

    for (dense, &activity) in activities.iter().enumerate() {
        for trial in 0..trials_per_class {
            let mut votes = Vec::with_capacity(SensorLocation::COUNT);
            for location in SensorLocation::ALL {
                let window = sample_window(ctx.models.spec(), activity, location, &user, &mut rng);
                let features = window_features(&window);
                let c = ctx
                    .models
                    .classifier(ModelVariant::Pruned, location)
                    .classify_with(&mut ws, &features)?;
                confusions[location.index()].record(dense, c.dense_label);
                votes.push(Vote {
                    node: NodeId::new(location.index() as u32),
                    activity: c.activity,
                    confidence: c.confidence,
                    reported_at: SimTime::from_millis(trial as u64),
                });
            }
            let verdict = majority_vote(&votes).expect("three votes always present");
            let verdict_dense = ctx
                .models
                .activities()
                .dense_index(verdict)
                .expect("votes are in-set");
            majority_cm.record(dense, verdict_dense);
        }
    }

    let per_sensor = confusions
        .iter()
        .map(|cm| {
            (0..classes)
                .map(|c| cm.class_accuracy(c).unwrap_or(0.0))
                .collect()
        })
        .collect();
    let majority = (0..classes)
        .map(|c| majority_cm.class_accuracy(c).unwrap_or(0.0))
        .collect();

    Ok(Fig2Result {
        activities,
        per_sensor,
        majority,
        confusions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Dataset;

    #[test]
    fn fig2_reproduces_sensor_pattern() {
        let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, 77).unwrap();
        let r = run_fig2(&ctx, 40).unwrap();
        assert_eq!(r.activities.len(), 6);
        assert_eq!(r.per_sensor.len(), 3);

        let overall =
            |loc: SensorLocation| -> f64 { r.confusions[loc.index()].accuracy().unwrap() };
        let chest = overall(SensorLocation::Chest);
        let ankle = overall(SensorLocation::LeftAnkle);
        let wrist = overall(SensorLocation::RightWrist);
        // Paper pattern: ankle best overall, wrist weakest.
        assert!(ankle > wrist, "ankle {ankle} vs wrist {wrist}");
        assert!(chest > wrist, "chest {chest} vs wrist {wrist}");

        // Chest is the best climbing sensor.
        let climb = ctx
            .models
            .activities()
            .dense_index(ActivityClass::Climbing)
            .unwrap();
        assert!(
            r.per_sensor[SensorLocation::Chest.index()][climb]
                >= r.per_sensor[SensorLocation::LeftAnkle.index()][climb],
            "chest must lead climbing"
        );

        // Majority voting beats the weakest sensor overall and is at
        // least competitive with the best.
        let majority_overall: f64 = r.majority.iter().sum::<f64>() / r.majority.len() as f64;
        assert!(
            majority_overall > wrist,
            "ensemble {majority_overall} vs wrist {wrist}"
        );
    }
}
