//! Ablations of the design choices DESIGN.md calls out.

use super::ExperimentContext;
use crate::deployment::Deployment;
use crate::error::CoreError;
use crate::policy::PolicyKind;
use crate::sim::{SimConfig, Simulator};
use origin_nn::Scalar;
use std::sync::Arc;

/// Results of the ablation battery at a fixed RR depth.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// RR depth used.
    pub cycle: u8,
    /// AAS only (no recall, no weighting).
    pub aas_accuracy: f64,
    /// + recall (majority voting).
    pub aasr_accuracy: f64,
    /// + adaptive confidence weighting (full Origin).
    pub origin_accuracy: f64,
    /// Naive completion rate with the NVP.
    pub naive_nvp_completion: f64,
    /// Naive completion rate with a volatile CPU (failed attempts waste
    /// all invested energy).
    pub naive_volatile_completion: f64,
    /// Origin accuracy across confidence-adaptation rates.
    pub alpha_sweep: Vec<(f64, f64)>,
    /// Origin accuracy with oracle anticipation (the scheduler is told
    /// the true current activity) — the upper bound on what a better
    /// next-activity predictor could buy.
    pub origin_oracle_accuracy: f64,
}

/// Runs the ablation battery at the context's master seed.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_ablation<S: Scalar>(
    ctx: &ExperimentContext<S>,
    cycle: u8,
) -> Result<AblationReport, CoreError> {
    run_ablation_seeded(ctx, cycle, ctx.seed)
}

/// Runs the ablation battery with an explicit simulation seed, reusing
/// the context's trained models — the multi-seed sweep path (models are
/// trained once; only the simulated world varies).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_ablation_seeded<S: Scalar>(
    ctx: &ExperimentContext<S>,
    cycle: u8,
    seed: u64,
) -> Result<AblationReport, CoreError> {
    let sim = ctx.simulator();
    let base = ctx.sim_config(PolicyKind::Aas { cycle }).with_seed(seed);

    let aas = sim.run(&base)?;
    let aasr = sim.run(&SimConfig {
        policy: PolicyKind::Aasr { cycle },
        ..base.clone()
    })?;
    let origin = sim.run(&SimConfig {
        policy: PolicyKind::Origin { cycle },
        ..base.clone()
    })?;

    // NVP vs volatile under the naive policy.
    let naive_cfg = SimConfig {
        policy: PolicyKind::NaiveAllOn,
        ..base.clone()
    };
    let naive_nvp = sim.run(&naive_cfg)?;
    let volatile_deployment = Deployment::builder().seed(ctx.seed).volatile_cpu().build();
    let volatile_sim =
        Simulator::from_shared(Arc::new(volatile_deployment), Arc::clone(&ctx.models));
    let naive_volatile = volatile_sim.run(&naive_cfg)?;

    // Adaptation-rate sweep.
    let mut alpha_sweep = Vec::new();
    for alpha in [0.02, 0.08, 0.3] {
        let report = sim.run(&SimConfig {
            policy: PolicyKind::Origin { cycle },
            alpha,
            ..base.clone()
        })?;
        alpha_sweep.push((alpha, report.accuracy()));
    }

    // Oracle anticipation: how much headroom is left in the "anticipate
    // the next activity" part of AAS.
    let oracle = sim.run(
        &SimConfig {
            policy: PolicyKind::Origin { cycle },
            ..base.clone()
        }
        .with_oracle_anticipation(),
    )?;

    Ok(AblationReport {
        cycle,
        aas_accuracy: aas.accuracy(),
        aasr_accuracy: aasr.accuracy(),
        origin_accuracy: origin.accuracy(),
        naive_nvp_completion: naive_nvp.completion_rate(),
        naive_volatile_completion: naive_volatile.completion_rate(),
        alpha_sweep,
        origin_oracle_accuracy: oracle.accuracy(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Dataset;
    use origin_types::SimDuration;

    #[test]
    fn ablation_ladder_and_nvp_value() {
        let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, 77)
            .unwrap()
            .with_horizon(SimDuration::from_secs(1_800));
        let r = run_ablation(&ctx, 12).unwrap();
        // Each mechanism earns its keep (small tolerance for noise).
        assert!(
            r.aasr_accuracy >= r.aas_accuracy - 0.02,
            "recall: {} vs {}",
            r.aasr_accuracy,
            r.aas_accuracy
        );
        assert!(
            r.origin_accuracy >= r.aasr_accuracy - 0.02,
            "weighting: {} vs {}",
            r.origin_accuracy,
            r.aasr_accuracy
        );
        // The NVP matters: volatile naive wastes partial investments.
        assert!(
            r.naive_nvp_completion >= r.naive_volatile_completion,
            "nvp {} vs volatile {}",
            r.naive_nvp_completion,
            r.naive_volatile_completion
        );
        assert_eq!(r.alpha_sweep.len(), 3);
        for (_, acc) in &r.alpha_sweep {
            assert!(*acc > 0.3, "alpha sweep accuracy degenerate: {acc}");
        }
        // Oracle anticipation is an upper bound on scheduling quality; the
        // learned anticipation must already be close to it (temporal
        // continuity makes "same as last classification" a good predictor).
        assert!(
            r.origin_oracle_accuracy >= r.origin_accuracy - 0.03,
            "oracle {} vs learned {}",
            r.origin_oracle_accuracy,
            r.origin_accuracy
        );
    }
}
