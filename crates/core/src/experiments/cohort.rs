//! Cross-user generalization: the same deployed system worn by a cohort
//! of different users.
//!
//! The paper evaluates a single wearer per run plus the Fig. 6 unseen-user
//! study; this extension quantifies the spread an operator should expect
//! across a population, for both Origin and Baseline-2.

use super::ExperimentContext;
use crate::baseline::{run_baseline_on, BaselineKind};
use crate::error::CoreError;
use crate::policy::PolicyKind;
use origin_nn::Scalar;
use origin_sensors::UserProfile;
use origin_types::{sum_ordered, UserId};
use std::sync::Arc;

/// One user's pair of operating points.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortPoint {
    /// The wearer.
    pub user: UserId,
    /// RR12-Origin accuracy on harvested energy.
    pub origin: f64,
    /// Baseline-2 accuracy on steady power.
    pub bl2: f64,
}

/// The cohort study.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortReport {
    /// Per-user points.
    pub points: Vec<CohortPoint>,
}

impl CohortReport {
    /// Mean and population standard deviation of Origin accuracy.
    ///
    /// # Panics
    ///
    /// Panics on an empty cohort (the driver never produces one).
    #[must_use]
    pub fn origin_stats(&self) -> (f64, f64) {
        stats(self.points.iter().map(|p| p.origin))
    }

    /// Mean and population standard deviation of Baseline-2 accuracy.
    ///
    /// # Panics
    ///
    /// Panics on an empty cohort.
    #[must_use]
    pub fn bl2_stats(&self) -> (f64, f64) {
        stats(self.points.iter().map(|p| p.bl2))
    }

    /// Fraction of users for whom Origin beats Baseline-2.
    #[must_use]
    pub fn origin_win_rate(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.origin > p.bl2).count() as f64 / self.points.len() as f64
    }
}

fn stats(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let values: Vec<f64> = values.collect();
    assert!(!values.is_empty(), "cohort must not be empty");
    let n = values.len() as f64;
    let mean = sum_ordered(values.iter().copied()) / n;
    let var = sum_ordered(values.iter().map(|v| (v - mean).powi(2))) / n;
    (mean, var.sqrt())
}

/// The wearer evaluated at cohort position `u` for master seed `seed`:
/// the deterministic identity/profile every cohort driver (serial or
/// parallel) agrees on.
#[must_use]
pub fn cohort_user(seed: u64, u: u32) -> UserProfile {
    UserProfile::sampled(UserId::new(2_000 + u), 0.08, seed ^ 0xC0_40_87)
}

/// Runs RR12-Origin and Baseline-2 for `users` distinct wearers sampled
/// from the training-population spread, at the context's master seed.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_cohort<S: Scalar>(
    ctx: &ExperimentContext<S>,
    users: u32,
) -> Result<CohortReport, CoreError> {
    run_cohort_seeded(ctx, users, ctx.seed)
}

/// [`run_cohort`] with an explicit simulation seed, reusing the context's
/// trained models — the multi-seed sweep path.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_cohort_seeded<S: Scalar>(
    ctx: &ExperimentContext<S>,
    users: u32,
    seed: u64,
) -> Result<CohortReport, CoreError> {
    let sim = ctx.simulator();
    let bl2_sim = crate::baseline::fully_powered_simulator(Arc::clone(&ctx.models));
    let mut points = Vec::with_capacity(users as usize);
    for u in 0..users {
        let profile = cohort_user(seed, u);
        let user_id = profile.user;
        let base = ctx
            .sim_config(PolicyKind::Origin { cycle: 12 })
            .with_seed(seed.wrapping_add(u64::from(u)))
            .with_user(profile);
        let origin = sim.run(&base)?;
        let bl2 = run_baseline_on(&bl2_sim, BaselineKind::Baseline2, &base)?;
        points.push(CohortPoint {
            user: user_id,
            origin: origin.accuracy(),
            bl2: bl2.report.accuracy(),
        });
    }
    Ok(CohortReport { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Dataset;
    use origin_types::SimDuration;

    #[test]
    fn cohort_accuracy_is_stable_across_users() {
        let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, 77)
            .unwrap()
            .with_horizon(SimDuration::from_secs(1_200));
        let r = run_cohort(&ctx, 4).unwrap();
        assert_eq!(r.points.len(), 4);
        let (mean, std) = r.origin_stats();
        assert!(mean > 0.75, "cohort mean collapsed: {mean}");
        assert!(std < 0.08, "cohort spread too wide: {std}");
        let (bl2_mean, _) = r.bl2_stats();
        // Origin stays competitive with the fully-powered baseline across
        // the population, not just for one lucky wearer.
        assert!(
            mean > bl2_mean - 0.05,
            "Origin {mean} vs BL-2 {bl2_mean} across cohort"
        );
        let win = r.origin_win_rate();
        assert!((0.0..=1.0).contains(&win));
    }
}
