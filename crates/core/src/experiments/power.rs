//! Average-power accounting — the abstract's framing: Origin is "at least
//! 2.5% more accurate than a classical battery-powered energy aware HAR
//! classifier continuously operating at the same average power".
//!
//! This driver measures the mean power each system actually *consumes*
//! and sets it against the harvest supply, quantifying the claim.

use super::ExperimentContext;
use crate::baseline::{run_baseline, BaselineKind};
use crate::error::CoreError;
use crate::policy::PolicyKind;
use crate::sim::SimConfig;
use origin_nn::Scalar;
use origin_types::Power;

/// One system's power/accuracy operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerRow {
    /// System label.
    pub label: String,
    /// Mean power consumed per node, averaged over the three nodes.
    pub mean_consumed_per_node: Power,
    /// Mean power harvested per node (zero relevance for baselines).
    pub mean_harvested_per_node: Power,
    /// Top-1 accuracy achieved at that operating point.
    pub accuracy: f64,
}

/// The power study result.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Mean incident harvest power of the shared trace.
    pub incident_power: Power,
    /// One row per system.
    pub rows: Vec<PowerRow>,
}

/// Measures consumed power and accuracy for Origin at each RR depth plus
/// both baselines.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_power_study<S: Scalar>(ctx: &ExperimentContext<S>) -> Result<PowerReport, CoreError> {
    let sim = ctx.simulator();
    let base = ctx.sim_config(PolicyKind::NaiveAllOn);

    let mut rows = Vec::new();
    let span = ctx.horizon;
    let nodes = 3.0;

    for cycle in [3u8, 6, 9, 12] {
        let policy = PolicyKind::Origin { cycle };
        let report = sim.run(&SimConfig {
            policy,
            ..base.clone()
        })?;
        let consumed: Power = report
            .node_counters
            .iter()
            .map(|c| c.mean_consumed_power(span))
            .sum::<Power>()
            / nodes;
        let harvested: Power = report
            .node_counters
            .iter()
            .map(|c| c.harvested.average_power(span))
            .sum::<Power>()
            / nodes;
        rows.push(PowerRow {
            label: policy.label(),
            mean_consumed_per_node: consumed,
            mean_harvested_per_node: harvested,
            accuracy: report.accuracy(),
        });
    }

    for kind in [BaselineKind::Baseline2, BaselineKind::Baseline1] {
        let b = run_baseline(kind, &ctx.models, &base)?;
        let consumed: Power = b
            .report
            .node_counters
            .iter()
            .map(|c| c.mean_consumed_power(span))
            .sum::<Power>()
            / nodes;
        rows.push(PowerRow {
            label: kind.label().to_owned(),
            mean_consumed_per_node: consumed,
            mean_harvested_per_node: Power::ZERO,
            accuracy: b.report.accuracy(),
        });
    }

    Ok(PowerReport {
        incident_power: ctx.deployment.mean_incident_power(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Dataset;
    use origin_types::SimDuration;

    #[test]
    fn origin_lives_within_its_harvest_while_baselines_burn_more() {
        let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, 77)
            .unwrap()
            .with_horizon(SimDuration::from_secs(1_200));
        let r = run_power_study(&ctx).unwrap();
        assert_eq!(r.rows.len(), 6);

        let origin12 = r
            .rows
            .iter()
            .find(|row| row.label == "RR12 Origin")
            .expect("present");
        // An EH system cannot consume more than it harvests.
        assert!(
            origin12.mean_consumed_per_node.as_microwatts()
                <= origin12.mean_harvested_per_node.as_microwatts() + 1e-6,
            "consumed {} vs harvested {}",
            origin12.mean_consumed_per_node,
            origin12.mean_harvested_per_node
        );
        // The fully-powered baselines burn far more than the harvest
        // could ever supply — that is the whole point of the paper.
        let bl2 = r
            .rows
            .iter()
            .find(|row| row.label == "BL-2")
            .expect("present");
        assert!(
            bl2.mean_consumed_per_node.as_microwatts()
                > 3.0 * origin12.mean_consumed_per_node.as_microwatts(),
            "BL-2 {} vs Origin {}",
            bl2.mean_consumed_per_node,
            origin12.mean_consumed_per_node
        );
        // Deeper cycles consume less power.
        let p = |label: &str| {
            r.rows
                .iter()
                .find(|row| row.label == label)
                .unwrap()
                .mean_consumed_per_node
                .as_microwatts()
        };
        assert!(p("RR12 Origin") <= p("RR3 Origin") + 1.0);
    }
}
