//! Fig. 4 — plain ER-r vs AAS per activity across RR3/6/9/12.

use super::ExperimentContext;
use crate::error::CoreError;
use crate::policy::PolicyKind;
use crate::sim::{SimConfig, SimReport};
use origin_nn::Scalar;
use origin_types::ActivityClass;

/// Accuracy of RR and RR+AAS per cycle depth and activity.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Activities in dense order.
    pub activities: Vec<ActivityClass>,
    /// Cycle depths evaluated (3, 6, 9, 12).
    pub cycles: Vec<u8>,
    /// `rr[cycle_idx][dense]` — plain ER-r per-activity accuracy.
    pub rr: Vec<Vec<f64>>,
    /// `aas[cycle_idx][dense]` — ER-r + AAS per-activity accuracy.
    pub aas: Vec<Vec<f64>>,
    /// Overall accuracies, parallel to `cycles`.
    pub rr_overall: Vec<f64>,
    /// Overall AAS accuracies, parallel to `cycles`.
    pub aas_overall: Vec<f64>,
}

fn per_activity(report: &SimReport, activities: &[ActivityClass]) -> Vec<f64> {
    activities
        .iter()
        .map(|&a| report.per_activity_accuracy(a).unwrap_or(0.0))
        .collect()
}

/// Runs the Fig. 4 sweep.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_fig4<S: Scalar>(ctx: &ExperimentContext<S>) -> Result<Fig4Result, CoreError> {
    let sim = ctx.simulator();
    let activities: Vec<ActivityClass> = ctx.models.activities().iter().collect();
    let cycles = vec![3u8, 6, 9, 12];
    let mut rr = Vec::new();
    let mut aas = Vec::new();
    let mut rr_overall = Vec::new();
    let mut aas_overall = Vec::new();

    for &cycle in &cycles {
        let base = ctx.sim_config(PolicyKind::RoundRobin { cycle });
        let rr_report = sim.run(&base)?;
        rr.push(per_activity(&rr_report, &activities));
        rr_overall.push(rr_report.accuracy());

        let aas_report = sim.run(&SimConfig {
            policy: PolicyKind::Aas { cycle },
            ..base
        })?;
        aas.push(per_activity(&aas_report, &activities));
        aas_overall.push(aas_report.accuracy());
    }

    Ok(Fig4Result {
        activities,
        cycles,
        rr,
        aas,
        rr_overall,
        aas_overall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Dataset;

    #[test]
    fn fig4_accuracy_rises_with_cycle_and_aas_helps() {
        let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, 77).unwrap();
        let r = run_fig4(&ctx).unwrap();
        assert_eq!(r.cycles, vec![3, 6, 9, 12]);
        // Deeper cycles complete more inferences → higher accuracy.
        assert!(
            r.rr_overall[3] > r.rr_overall[0],
            "RR12 {} vs RR3 {}",
            r.rr_overall[3],
            r.rr_overall[0]
        );
        // AAS beats plain RR on average across depths.
        let rr_mean: f64 = r.rr_overall.iter().sum::<f64>() / 4.0;
        let aas_mean: f64 = r.aas_overall.iter().sum::<f64>() / 4.0;
        assert!(aas_mean > rr_mean, "AAS {aas_mean} vs RR {rr_mean}");
        // "More than 70% accuracy for most of the activities" at RR12+AAS.
        let good = r.aas[3].iter().filter(|&&a| a > 0.55).count();
        assert!(good >= 4, "RR12 AAS per-activity: {:?}", r.aas[3]);
    }
}
