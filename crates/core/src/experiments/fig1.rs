//! Fig. 1 — inference completion under naive scheduling.
//!
//! (a) all three sensors attempt every window: ~1% all succeed, ~9% at
//! least one, ~90% none; (b) plain RR3: ~28% succeed / 72% fail.

use super::ExperimentContext;
use crate::error::CoreError;
use crate::policy::PolicyKind;
use crate::sim::SimConfig;
use origin_nn::Scalar;

/// Completion fractions for the two naive schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// Fig. 1a: fraction of windows where all three completed.
    pub naive_all: f64,
    /// Fig. 1a: fraction where at least one (but not all) completed.
    pub naive_some: f64,
    /// Fig. 1a: fraction where none completed.
    pub naive_none: f64,
    /// Fig. 1b: fraction of RR3 attempts that completed.
    pub rr3_succeed: f64,
    /// Fig. 1b: fraction that failed.
    pub rr3_fail: f64,
}

/// Runs both motivation experiments.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_fig1<S: Scalar>(ctx: &ExperimentContext<S>) -> Result<Fig1Result, CoreError> {
    let sim = ctx.simulator();
    let base = ctx.sim_config(PolicyKind::NaiveAllOn);

    let naive = sim.run(&base)?;
    let (all, some, none) = naive.completion_breakdown();

    let rr3 = sim.run(&SimConfig {
        policy: PolicyKind::RoundRobin { cycle: 3 },
        ..base
    })?;
    let succeed = rr3.completion_rate();

    Ok(Fig1Result {
        naive_all: all,
        naive_some: some,
        naive_none: none,
        rr3_succeed: succeed,
        rr3_fail: 1.0 - succeed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Dataset;
    use origin_types::SimDuration;

    #[test]
    fn fig1_shape_matches_paper() {
        let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, 77)
            .unwrap()
            .with_horizon(SimDuration::from_secs(1_200));
        let r = run_fig1(&ctx).unwrap();
        // Fractions are fractions.
        for v in [
            r.naive_all,
            r.naive_some,
            r.naive_none,
            r.rr3_succeed,
            r.rr3_fail,
        ] {
            assert!((0.0..=1.0).contains(&v), "{r:?}");
        }
        assert!((r.naive_all + r.naive_some + r.naive_none - 1.0).abs() < 1e-9);
        assert!((r.rr3_succeed + r.rr3_fail - 1.0).abs() < 1e-9);
        // Paper shape: naive mostly fails; RR3 does clearly better than
        // naive but still fails most of the time.
        assert!(r.naive_none > 0.6, "naive none = {}", r.naive_none);
        assert!(r.naive_all < 0.15, "naive all = {}", r.naive_all);
        assert!(
            r.rr3_succeed > r.naive_all + r.naive_some,
            "RR3 ({}) must beat naive (>=1: {})",
            r.rr3_succeed,
            r.naive_all + r.naive_some
        );
        assert!(r.rr3_fail > 0.3, "RR3 should still fail often");
    }
}
