//! Table I — RR12-Origin vs both baselines per activity (MHEALTH).

use super::ExperimentContext;
use crate::baseline::{run_baseline, BaselineKind};
use crate::error::CoreError;
use crate::policy::PolicyKind;
use origin_nn::Scalar;
use origin_types::{sum_ordered, ActivityClass};

/// One Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The activity.
    pub activity: ActivityClass,
    /// RR12-Origin accuracy (harvested energy).
    pub origin: f64,
    /// Baseline-2 accuracy (fully powered, pruned).
    pub bl2: f64,
    /// Baseline-1 accuracy (fully powered, unpruned).
    pub bl1: f64,
}

impl Table1Row {
    /// Percentage-point delta vs Baseline-2 (the paper's "vs BL-2").
    #[must_use]
    pub fn vs_bl2(&self) -> f64 {
        (self.origin - self.bl2) * 100.0
    }

    /// Percentage-point delta vs Baseline-1.
    #[must_use]
    pub fn vs_bl1(&self) -> f64 {
        (self.origin - self.bl1) * 100.0
    }
}

/// The full table plus averages.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Per-activity rows in dense order.
    pub rows: Vec<Table1Row>,
    /// Overall top-1 accuracies: (Origin, BL-2, BL-1).
    pub overall: (f64, f64, f64),
}

impl Table1Result {
    /// Mean per-activity advantage over Baseline-2, percentage points
    /// (the paper reports +2.72 for MHEALTH).
    #[must_use]
    pub fn mean_vs_bl2(&self) -> f64 {
        sum_ordered(self.rows.iter().map(Table1Row::vs_bl2)) / self.rows.len() as f64
    }
}

/// Runs RR12-Origin and both baselines and assembles the table.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_table1<S: Scalar>(ctx: &ExperimentContext<S>) -> Result<Table1Result, CoreError> {
    let sim = ctx.simulator();
    let base = ctx.sim_config(PolicyKind::Origin { cycle: 12 });

    let origin = sim.run(&base)?;
    let bl2 = run_baseline(BaselineKind::Baseline2, &ctx.models, &base)?.report;
    let bl1 = run_baseline(BaselineKind::Baseline1, &ctx.models, &base)?.report;

    let rows = ctx
        .models
        .activities()
        .iter()
        .map(|activity| Table1Row {
            activity,
            origin: origin.per_activity_accuracy(activity).unwrap_or(0.0),
            bl2: bl2.per_activity_accuracy(activity).unwrap_or(0.0),
            bl1: bl1.per_activity_accuracy(activity).unwrap_or(0.0),
        })
        .collect();

    Ok(Table1Result {
        rows,
        overall: (origin.accuracy(), bl2.accuracy(), bl1.accuracy()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Dataset;
    use origin_types::SimDuration;

    #[test]
    fn table1_headline_result_holds() {
        let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, 77)
            .unwrap()
            .with_horizon(SimDuration::from_secs(3_600));
        let t = run_table1(&ctx).unwrap();
        assert_eq!(t.rows.len(), 6);
        let (origin, bl2, bl1) = t.overall;
        // Headline: Origin on harvested energy beats BL-2 on steady power.
        assert!(origin > bl2, "Origin {origin} vs BL-2 {bl2}");
        // BL-1 (unpruned) remains the accuracy ceiling overall.
        assert!(bl1 >= bl2 - 0.03, "BL-1 {bl1} vs BL-2 {bl2}");
        // Overall advantage is positive, in the paper's low-single-digit
        // percentage-point ballpark; per-activity deltas are mixed (the
        // paper's walking row is negative too), so the per-activity mean
        // only needs to stay in that neighbourhood.
        assert!(
            (origin - bl2) * 100.0 > 0.5,
            "overall advantage too small: {:.2}",
            (origin - bl2) * 100.0
        );
        let adv = t.mean_vs_bl2();
        assert!(adv > -2.0, "mean vs BL-2 = {adv}");
        assert!(adv < 20.0, "implausibly large advantage {adv}");
        // Deltas are consistent with the stored accuracies.
        for row in &t.rows {
            assert!((row.vs_bl2() - (row.origin - row.bl2) * 100.0).abs() < 1e-12);
        }
    }
}
