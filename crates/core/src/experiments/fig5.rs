//! Fig. 5 — the full policy sweep (AAS / AASR / Origin × RR depth) against
//! both fully-powered baselines, on MHEALTH (5a) and PAMAP2 (5b).

use super::ExperimentContext;
use crate::baseline::{run_baseline, BaselineKind};
use crate::error::CoreError;
use crate::policy::PolicyKind;
use crate::sim::SimConfig;
use origin_nn::Scalar;
use origin_types::ActivityClass;

/// One policy's row of the sweep.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Policy label ("RR12 Origin", "BL-1", ...).
    pub label: String,
    /// Per-activity accuracy in dense order.
    pub per_activity: Vec<f64>,
    /// Overall top-1 accuracy.
    pub overall: f64,
}

/// The complete sweep for one dataset.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Dataset label ("MHEALTH" / "PAMAP2").
    pub dataset: &'static str,
    /// Activities in dense order.
    pub activities: Vec<ActivityClass>,
    /// One row per policy, EH policies first, then BL-2 and BL-1.
    pub rows: Vec<PolicyRow>,
}

impl Fig5Result {
    /// The row with the given label, if present.
    #[must_use]
    pub fn row(&self, label: &str) -> Option<&PolicyRow> {
        self.rows.iter().find(|r| r.label == label)
    }
}

/// Runs the Fig. 5 sweep for the context's dataset.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_fig5<S: Scalar>(ctx: &ExperimentContext<S>) -> Result<Fig5Result, CoreError> {
    let sim = ctx.simulator();
    let activities: Vec<ActivityClass> = ctx.models.activities().iter().collect();
    let base = ctx.sim_config(PolicyKind::NaiveAllOn);

    let mut rows = Vec::new();
    for cycle in [3u8, 6, 9, 12] {
        for policy in [
            PolicyKind::Aas { cycle },
            PolicyKind::Aasr { cycle },
            PolicyKind::Origin { cycle },
        ] {
            let report = sim.run(&SimConfig {
                policy,
                ..base.clone()
            })?;
            rows.push(PolicyRow {
                label: policy.label(),
                per_activity: activities
                    .iter()
                    .map(|&a| report.per_activity_accuracy(a).unwrap_or(0.0))
                    .collect(),
                overall: report.accuracy(),
            });
        }
    }

    for kind in [BaselineKind::Baseline2, BaselineKind::Baseline1] {
        let b = run_baseline(kind, &ctx.models, &base)?;
        rows.push(PolicyRow {
            label: kind.label().to_owned(),
            per_activity: activities
                .iter()
                .map(|&a| b.report.per_activity_accuracy(a).unwrap_or(0.0))
                .collect(),
            overall: b.report.accuracy(),
        });
    }

    Ok(Fig5Result {
        dataset: ctx.dataset.label(),
        activities,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Dataset;
    use origin_types::SimDuration;

    #[test]
    fn fig5_pamap2_headline_holds() {
        let ctx = ExperimentContext::<f64>::new(Dataset::Pamap2, 77)
            .unwrap()
            .with_horizon(SimDuration::from_secs(1_800));
        let r = run_fig5(&ctx).unwrap();
        assert_eq!(r.dataset, "PAMAP2");
        assert_eq!(r.activities.len(), 5);
        let overall = |label: &str| r.row(label).unwrap().overall;
        // The ladder and the headline hold on the second dataset too.
        assert!(overall("RR12 Origin") >= overall("RR12 AASR") - 0.02);
        assert!(
            overall("RR12 Origin") > overall("BL-2") - 0.01,
            "Origin {} vs BL-2 {}",
            overall("RR12 Origin"),
            overall("BL-2")
        );
    }

    #[test]
    fn fig5_policy_ladder_holds_on_mhealth() {
        let ctx = ExperimentContext::<f64>::new(Dataset::Mhealth, 77)
            .unwrap()
            .with_horizon(SimDuration::from_secs(1_800));
        let r = run_fig5(&ctx).unwrap();
        assert_eq!(r.dataset, "MHEALTH");
        assert_eq!(r.rows.len(), 12 + 2);

        let overall = |label: &str| r.row(label).unwrap().overall;
        // Recall helps: AASR ≥ AAS at RR12.
        assert!(
            overall("RR12 AASR") >= overall("RR12 AAS") - 0.02,
            "AASR {} vs AAS {}",
            overall("RR12 AASR"),
            overall("RR12 AAS")
        );
        // The confidence matrix helps: Origin ≥ AASR at RR12.
        assert!(
            overall("RR12 Origin") >= overall("RR12 AASR") - 0.02,
            "Origin {} vs AASR {}",
            overall("RR12 Origin"),
            overall("RR12 AASR")
        );
        // Headline: RR12 Origin beats BL-2 despite harvested energy.
        assert!(
            overall("RR12 Origin") > overall("BL-2"),
            "Origin {} vs BL-2 {}",
            overall("RR12 Origin"),
            overall("BL-2")
        );
        // Depth helps Origin.
        assert!(overall("RR12 Origin") > overall("RR3 Origin"));
    }
}
