//! The discrete-time system simulator.
//!
//! Steps the whole stack at the HAR window period: harvest → scheduling →
//! sensing → inference → radio → host aggregation → scoring, exactly the
//! loop described across Sections III and IV.

use crate::confidence::ConfidenceMatrix;
use crate::deployment::{Deployment, NodeSource};
use crate::ensemble::EnsembleKind;
use crate::error::CoreError;
use crate::host::HostDevice;
use crate::models::{ModelBank, ModelVariant};
use crate::policy::{PolicyKind, PolicyState};
use origin_energy::{AdvanceFlows, DutyState, EnergyNode, NodeCounters};
use origin_net::{Endpoint, Message, MessageBus};
use origin_nn::{ConfusionMatrix, KernelPath, Scalar, Workspace};
use origin_sensors::{
    add_noise_snr, sample_window, window_features, ActivityTimeline, TimelineConfig, UserProfile,
};
use origin_telemetry::{DrawOp, LedgerEntry, NoopObserver, SimEvent, SimObserver};
use origin_types::{ActivitySet, Energy, NodeId, SensorLocation, SimDuration, SimTime, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Everything one simulation run needs beyond the deployment and models.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The scheduling policy under test.
    pub policy: PolicyKind,
    /// Simulated duration.
    pub horizon: SimDuration,
    /// Master seed (timeline, runtime windows, link loss).
    pub seed: u64,
    /// The wearer.
    pub user: UserProfile,
    /// Optional Gaussian corruption of runtime windows at this SNR (dB) —
    /// Fig. 6 uses 20 dB.
    pub noise_snr_db: Option<f64>,
    /// Scales activity dwell times (1.0 = class-typical).
    pub dwell_scale: f64,
    /// Multiplies the deployment's per-location harvest power (1.0 = the
    /// calibrated office). Population sweeps draw this per user
    /// ([`crate::PopulationSpec`]); steady fully-powered sources ignore
    /// it.
    pub harvest_scale: f64,
    /// Which classifier variant the nodes run.
    pub variant: ModelVariant,
    /// Confidence-matrix moving-average rate.
    pub alpha: f64,
    /// Nodes that have failed outright (sensor-failure robustness study:
    /// Origin "poses minimum risk if one of the sensors fails").
    pub disabled_nodes: Vec<NodeId>,
    /// Feed the scheduler the *true* current activity instead of the
    /// host's classification — the oracle-anticipation ablation that
    /// upper-bounds what better activity prediction could buy AAS.
    pub oracle_anticipation: bool,
    /// Which NN kernel implementations the run's inference workspace
    /// dispatches to. Both paths are bitwise identical (`Unrolled`, the
    /// default, is the fast one); the knob exists for A/B benching and
    /// regression bisection, and is recorded in manifests only when
    /// non-default.
    pub kernel_path: KernelPath,
}

impl SimConfig {
    /// A config for `policy` with one-hour horizon, nominal user, pruned
    /// models and the default adaptation rate.
    #[must_use]
    pub fn new(policy: PolicyKind) -> Self {
        Self {
            policy,
            horizon: SimDuration::from_secs(3_600),
            seed: 0x5EED,
            user: UserProfile::nominal(UserId::new(0)),
            noise_snr_db: None,
            dwell_scale: 1.0,
            harvest_scale: 1.0,
            variant: ModelVariant::Pruned,
            alpha: ConfidenceMatrix::DEFAULT_ALPHA,
            disabled_nodes: Vec::new(),
            oracle_anticipation: false,
            kernel_path: KernelPath::default(),
        }
    }

    /// Sets the horizon. Builder-style.
    #[must_use]
    pub fn with_horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the master seed. Builder-style.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the wearer. Builder-style.
    #[must_use]
    pub fn with_user(mut self, user: UserProfile) -> Self {
        self.user = user;
        self
    }

    /// Adds runtime window noise at `snr_db`. Builder-style.
    #[must_use]
    pub fn with_noise_snr(mut self, snr_db: f64) -> Self {
        self.noise_snr_db = Some(snr_db);
        self
    }

    /// Selects the classifier variant. Builder-style.
    #[must_use]
    pub fn with_variant(mut self, variant: ModelVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Scales activity dwell times. Builder-style.
    #[must_use]
    pub fn with_dwell_scale(mut self, scale: f64) -> Self {
        self.dwell_scale = scale;
        self
    }

    /// Scales the deployment's harvest power for this run. Builder-style.
    ///
    /// `1.0` is bit-identical to not setting a scale at all, so the
    /// committed f64 goldens are unaffected by this knob existing.
    #[must_use]
    pub fn with_harvest_scale(mut self, scale: f64) -> Self {
        self.harvest_scale = scale;
        self
    }

    /// Sets the confidence adaptation rate. Builder-style.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Marks nodes as failed for the whole run. Builder-style.
    #[must_use]
    pub fn with_disabled_nodes(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.disabled_nodes = nodes.into_iter().collect();
        self
    }

    /// Enables oracle anticipation (scheduling ablation). Builder-style.
    #[must_use]
    pub fn with_oracle_anticipation(mut self) -> Self {
        self.oracle_anticipation = true;
        self
    }

    /// Pins the NN [`KernelPath`] for the run (default
    /// [`KernelPath::Unrolled`]; both paths are bitwise identical).
    /// Builder-style.
    #[must_use]
    pub fn with_kernel_path(mut self, path: KernelPath) -> Self {
        self.kernel_path = path;
        self
    }
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Label of the policy that ran ("RR12 Origin").
    pub policy_label: String,
    /// The class set dense labels index into.
    pub activities: ActivitySet,
    /// Total simulated windows.
    pub windows: u64,
    /// Windows where the host had no classification yet.
    pub no_output_windows: u64,
    /// Ground truth × prediction over windows *with* output.
    pub confusion: ConfusionMatrix,
    /// Per-class counts of windows without output.
    pub missed_by_class: Vec<u64>,
    /// Windows in which at least one inference was attempted.
    pub attempt_windows: u64,
    /// Total inference attempts.
    pub attempts: u64,
    /// Attempts that completed.
    pub completions: u64,
    /// Attempt-windows where every attempter finished (Fig. 1a "all
    /// succeed").
    pub windows_all_completed: u64,
    /// Attempt-windows where some but not all finished.
    pub windows_some_completed: u64,
    /// Attempt-windows where nobody finished.
    pub windows_none_completed: u64,
    /// Radio frames offered / lost.
    pub messages_sent: u64,
    /// Radio frames lost to the link.
    pub messages_dropped: u64,
    /// Radio frames offered by each node, indexed by node id.
    pub sent_by_node: Vec<u64>,
    /// Radio frames lost per sending node, indexed by node id.
    pub dropped_by_node: Vec<u64>,
    /// Final per-node energy counters.
    pub node_counters: Vec<NodeCounters>,
    /// The host's confidence matrix at the end of the run.
    pub final_confidence: ConfidenceMatrix,
}

/// Whole-run energy totals summed over nodes, in the energy ledger's
/// flow terms: `offered = harvested + charge_loss + clipped`, and the
/// stored delta over the run is `harvested − consumed − leaked`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy offered by the harvester front-ends (pre-efficiency).
    pub offered: Energy,
    /// Energy actually stored into the capacitors.
    pub harvested: Energy,
    /// Energy drawn for duties, inference, radio and checkpoints.
    pub consumed: Energy,
    /// Energy lost to imperfect charge efficiency.
    pub charge_loss: Energy,
    /// Post-efficiency energy rejected at capacity.
    pub clipped: Energy,
    /// Capacitor self-discharge.
    pub leaked: Energy,
}

impl SimReport {
    /// Whole-run energy totals summed over the final node counters.
    #[must_use]
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        let mut total = EnergyBreakdown::default();
        for c in &self.node_counters {
            total.offered += c.offered;
            total.harvested += c.harvested;
            total.consumed += c.consumed;
            total.charge_loss += c.charge_loss;
            total.clipped += c.clipped;
            total.leaked += c.leaked;
        }
        total
    }

    /// Overall top-1 accuracy; windows without output count as wrong.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.activities.len())
            .map(|c| self.confusion.count(c, c))
            .sum();
        correct as f64 / self.windows as f64
    }

    /// Per-activity accuracy (missing-output windows count as wrong), or
    /// `None` when the activity never occurred or is out of set.
    #[must_use]
    pub fn per_activity_accuracy(&self, activity: origin_types::ActivityClass) -> Option<f64> {
        let dense = self.activities.dense_index(activity)?;
        let row: u64 = (0..self.activities.len())
            .map(|p| self.confusion.count(dense, p))
            .sum();
        let total = row + self.missed_by_class[dense];
        if total == 0 {
            return None;
        }
        Some(self.confusion.count(dense, dense) as f64 / total as f64)
    }

    /// Fraction of attempts that completed.
    #[must_use]
    pub fn completion_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.completions as f64 / self.attempts as f64
        }
    }

    /// Fig. 1 breakdown over attempt-windows: (all, some, none) fractions.
    #[must_use]
    pub fn completion_breakdown(&self) -> (f64, f64, f64) {
        if self.attempt_windows == 0 {
            return (0.0, 0.0, 0.0);
        }
        let n = self.attempt_windows as f64;
        (
            self.windows_all_completed as f64 / n,
            self.windows_some_completed as f64 / n,
            self.windows_none_completed as f64 / n,
        )
    }
}

impl core::fmt::Display for SimReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (all, some, none) = self.completion_breakdown();
        writeln!(
            f,
            "{}: {:.2}% top-1 over {} windows ({} without output)",
            self.policy_label,
            self.accuracy() * 100.0,
            self.windows,
            self.no_output_windows
        )?;
        writeln!(
            f,
            "  attempts {} / completions {} ({:.1}%); windows all/some/none: {:.1}%/{:.1}%/{:.1}%",
            self.attempts,
            self.completions,
            self.completion_rate() * 100.0,
            all * 100.0,
            some * 100.0,
            none * 100.0
        )?;
        write!(
            f,
            "  radio: {} sent, {} dropped",
            self.messages_sent, self.messages_dropped
        )?;
        for (n, (sent, dropped)) in self
            .sent_by_node
            .iter()
            .zip(&self.dropped_by_node)
            .enumerate()
        {
            write!(f, "; node{n} {sent}/{dropped}")?;
        }
        Ok(())
    }
}

/// Binds a deployment to a trained model bank and runs policies over it.
///
/// The deployment and models are held behind [`Arc`], so cloning a
/// `Simulator` — or sharing one across worker threads (`Simulator` is
/// `Send + Sync`; [`Simulator::run`] takes `&self`) — never re-trains or
/// deep-copies them. Parallel sweeps build one simulator per
/// deployment/model pair and fan cells out over it.
///
/// The simulator runs at whatever kernel precision its bank was trained
/// at (`Simulator<f32>` over a `ModelBank<f32>`); reports, confidence
/// scores and every counter stay `f64` regardless.
#[derive(Debug, Clone)]
pub struct Simulator<S: Scalar = f64> {
    deployment: Arc<Deployment>,
    models: Arc<ModelBank<S>>,
}

impl<S: Scalar> Simulator<S> {
    /// Creates a simulator for the deployment/model pair.
    #[must_use]
    pub fn new(deployment: Deployment, models: ModelBank<S>) -> Self {
        Self::from_shared(Arc::new(deployment), Arc::new(models))
    }

    /// Creates a simulator over already-shared deployment/models handles,
    /// without cloning either (the fan-out path: one trained
    /// [`ModelBank`] serves every worker).
    #[must_use]
    pub fn from_shared(deployment: Arc<Deployment>, models: Arc<ModelBank<S>>) -> Self {
        Self { deployment, models }
    }

    /// The deployment.
    #[must_use]
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The model bank.
    #[must_use]
    pub fn models(&self) -> &ModelBank<S> {
        &self.models
    }

    /// The shared handle to the model bank (cheap to clone across
    /// workers).
    #[must_use]
    pub fn shared_models(&self) -> Arc<ModelBank<S>> {
        Arc::clone(&self.models)
    }

    /// The shared handle to the deployment.
    #[must_use]
    pub fn shared_deployment(&self) -> Arc<Deployment> {
        Arc::clone(&self.deployment)
    }

    /// Runs one policy over the configured horizon.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadCycle`] for an invalid ER-r cycle.
    pub fn run(&self, config: &SimConfig) -> Result<SimReport, CoreError> {
        self.run_observed(config, &mut NoopObserver)
    }

    /// [`Simulator::run`] with telemetry: every stage of the loop emits
    /// [`SimEvent`]s into `observer` — window starts, harvest slices,
    /// slot decisions (no-op slots included), activation signals,
    /// inference attempts/completions/brownouts, NVP checkpoints, radio
    /// traffic, recall and ensemble votes, and confidence updates.
    ///
    /// Observers are pure consumers: an instrumented run produces a
    /// report identical to [`Simulator::run`] on the same config
    /// (`tests/telemetry.rs` pins this byte-for-byte).
    ///
    /// When `observer` answers `true` to [`SimObserver::wants_ledger`]
    /// (e.g. a [`origin_telemetry::LedgerAuditor`] or any observer behind
    /// [`origin_telemetry::WithLedger`]), the run additionally emits the
    /// per-node, per-slot energy-ledger flow stream
    /// ([`SimEvent::Ledger`]); the flag is read once at run start, so it
    /// must be constant.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadCycle`] for an invalid ER-r cycle.
    pub fn run_observed<O: SimObserver>(
        &self,
        config: &SimConfig,
        observer: &mut O,
    ) -> Result<SimReport, CoreError> {
        let window = self.deployment.window();
        let windows_total = config.horizon.steps_of(window);
        let activities = self.models.activities().clone();
        let classes = activities.len();

        let timeline = ActivityTimeline::generate(
            &TimelineConfig {
                activities: activities.clone(),
                dwell_jitter: 0.4,
                dwell_scale: config.dwell_scale,
            },
            config.seed ^ 0x7131_E11E,
            config.horizon,
        );

        let mut nodes: Vec<EnergyNode<NodeSource>> =
            self.deployment.build_nodes_scaled(config.harvest_scale);
        let node_count = nodes.len();
        let mut policy = PolicyState::new(config.policy, self.models.rank_table(), node_count)?;

        let ensemble = config.policy.ensemble();
        let confidence = if ensemble == EnsembleKind::ConfidenceWeighted {
            self.models.confidence_matrix(config.alpha)
        } else {
            ConfidenceMatrix::uniform(activities.clone(), node_count, config.alpha)
        };
        let mut host = HostDevice::new(
            node_count,
            ensemble,
            confidence,
            config.policy.adapts_confidence(),
        );

        let mut bus = MessageBus::new(self.deployment.link(), node_count);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x51AB_1E5E);
        // One reusable NN workspace per run keeps the per-window inference
        // hot path allocation-free (bitwise-identical to `classify`),
        // pinned to the config's kernel path.
        let mut ws = Workspace::with_kernel_path(config.kernel_path);

        // Per-node attempt energy (sense is paid through the duty).
        let infer_cost: Vec<Energy> = SensorLocation::ALL
            .iter()
            .map(|&loc| self.models.inference_energy(config.variant, loc))
            .collect();
        let sense_cost = self.deployment.costs().sense_per_window;

        let mut report = SimReport {
            policy_label: config.policy.label(),
            activities: activities.clone(),
            windows: windows_total,
            no_output_windows: 0,
            confusion: ConfusionMatrix::new(classes),
            missed_by_class: vec![0; classes],
            attempt_windows: 0,
            attempts: 0,
            completions: 0,
            windows_all_completed: 0,
            windows_some_completed: 0,
            windows_none_completed: 0,
            messages_sent: 0,
            messages_dropped: 0,
            sent_by_node: Vec::new(),
            dropped_by_node: Vec::new(),
            node_counters: Vec::new(),
            final_confidence: host.confidence().clone(),
        };

        // Hoisted once per run: `wants_ledger` must answer constantly, so
        // the uninstrumented path never pays for flow decomposition.
        let ledger = observer.wants_ledger();
        if ledger {
            for (n, node) in nodes.iter().enumerate() {
                observer.on_event(&SimEvent::Ledger {
                    window: 0,
                    node: NodeId::new(n as u32),
                    entry: LedgerEntry::Opening {
                        stored_uj: node.stored().as_microjoules(),
                    },
                });
            }
        }

        for w in 0..windows_total {
            let t0 = SimTime::from_micros(w * window.as_micros());
            let t1 = t0 + window;
            let truth = timeline.activity_at(t0);
            let truth_dense = activities
                .dense_index(truth)
                .expect("timeline draws from the model's activity set");
            observer.on_event(&SimEvent::WindowStart {
                window: w,
                at_us: t0.as_micros(),
                truth,
            });

            let headroom: Vec<f64> = nodes
                .iter()
                .enumerate()
                .map(|(n, node)| {
                    if config.disabled_nodes.iter().any(|d| d.as_usize() == n) {
                        return 0.0; // a dead sensor never has energy
                    }
                    let cost = (sense_cost + infer_cost[n]).as_microjoules();
                    node.stored().as_microjoules() / cost
                })
                .collect();
            let anticipated = if config.oracle_anticipation {
                Some(truth)
            } else {
                host.anticipated()
            };
            let plan = policy.plan_observed(w, anticipated, &headroom, observer);

            // AAS hand-off signalling.
            if let Some((from, to)) = plan.signal {
                observer.on_event(&SimEvent::ActivationSignal {
                    window: w,
                    from,
                    to,
                });
                let frame = Message::ActivationSignal {
                    target: to,
                    anticipated: truth, // payload only; content is opaque here
                };
                let bytes = frame.wire_size();
                let tx_cost = self.deployment.costs().tx_cost(bytes);
                let paid = nodes[from.as_usize()].pay(tx_cost);
                if ledger {
                    let uj = if paid { tx_cost.as_microjoules() } else { 0.0 };
                    emit_drawn(observer, w, from, DrawOp::RadioTx, uj);
                }
                bus.send_observed(
                    Endpoint::Node(from),
                    Endpoint::Node(to),
                    frame,
                    t0,
                    &mut rng,
                    observer,
                );
            }

            // Advance every node with its duty for this window.
            let mut sensed_ok = vec![false; node_count];
            for (n, node) in nodes.iter_mut().enumerate() {
                let is_attempter = plan.attempters.iter().any(|a| a.as_usize() == n);
                let duty = if is_attempter {
                    DutyState::Sense
                } else {
                    DutyState::Sleep
                };
                let before = node.counters();
                sensed_ok[n] = node.advance(t0, t1, duty);
                observer.on_event(&SimEvent::HarvestSlice {
                    window: w,
                    node: NodeId::new(n as u32),
                    harvested_uj: (node.counters().harvested - before.harvested).as_microjoules(),
                    stored_uj: node.stored().as_microjoules(),
                });
                if ledger {
                    emit_advance_ledger(observer, w, NodeId::new(n as u32), node.last_advance());
                }
            }

            // Inference attempts.
            let attempts_this = plan.attempters.len() as u64;
            let mut completions_this = 0u64;
            for &attempter in &plan.attempters {
                let n = attempter.as_usize();
                report.attempts += 1;
                observer.on_event(&SimEvent::InferenceAttempt {
                    window: w,
                    node: attempter,
                    headroom: headroom[n],
                });
                if config.disabled_nodes.contains(&attempter) {
                    continue; // a failed sensor produces nothing
                }
                if !sensed_ok[n] {
                    // Browned out while sampling: no usable window.
                    observer.on_event(&SimEvent::InferenceBrownout {
                        window: w,
                        node: attempter,
                        sensed: false,
                    });
                    continue;
                }
                let before = nodes[n].counters();
                if !nodes[n].attempt_window(infer_cost[n]) {
                    let suspended = nodes[n].counters().suspended > before.suspended;
                    if suspended {
                        observer.on_event(&SimEvent::NvpCheckpoint {
                            window: w,
                            node: attempter,
                        });
                    }
                    observer.on_event(&SimEvent::InferenceBrownout {
                        window: w,
                        node: attempter,
                        sensed: true,
                    });
                    if ledger {
                        let uj = (nodes[n].counters().consumed - before.consumed).as_microjoules();
                        let op = if suspended {
                            DrawOp::Checkpoint
                        } else {
                            DrawOp::Lost
                        };
                        emit_drawn(observer, w, attempter, op, uj);
                    }
                    continue;
                }
                if ledger {
                    let uj = (nodes[n].counters().consumed - before.consumed).as_microjoules();
                    emit_drawn(observer, w, attempter, DrawOp::Infer, uj);
                }
                completions_this += 1;
                report.completions += 1;

                let location = SensorLocation::from_index(n).expect("three paper locations");
                let mut imu_window =
                    sample_window(self.models.spec(), truth, location, &config.user, &mut rng);
                if let Some(snr) = config.noise_snr_db {
                    add_noise_snr(&mut imu_window, snr, &mut rng);
                }
                let features = window_features(&imu_window);
                let classification = self
                    .models
                    .classifier(config.variant, location)
                    .classify_with(&mut ws, &features)
                    .expect("feature width matches the trained classifier");

                observer.on_event(&SimEvent::InferenceCompleted {
                    window: w,
                    node: attempter,
                    activity: classification.activity,
                    confidence: classification.confidence,
                });

                let frame = Message::ClassificationReport {
                    node: attempter,
                    activity: classification.activity,
                    confidence: classification.confidence,
                };
                let bytes = frame.wire_size();
                let tx_cost = self.deployment.costs().tx_cost(bytes);
                let paid = nodes[n].pay(tx_cost);
                if ledger {
                    let uj = if paid { tx_cost.as_microjoules() } else { 0.0 };
                    emit_drawn(observer, w, attempter, DrawOp::RadioTx, uj);
                }
                bus.send_observed(
                    Endpoint::Node(attempter),
                    Endpoint::Host,
                    frame,
                    t0,
                    &mut rng,
                    observer,
                );
            }

            if attempts_this > 0 {
                report.attempt_windows += 1;
                if completions_this == attempts_this {
                    report.windows_all_completed += 1;
                } else if completions_this > 0 {
                    report.windows_some_completed += 1;
                } else {
                    report.windows_none_completed += 1;
                }
            }

            // Host ingests reports that arrived within the window.
            for frame in bus.poll(Endpoint::Host, t1) {
                if let Message::ClassificationReport {
                    node,
                    activity,
                    confidence,
                } = frame.message
                {
                    host.on_report_observed(node, activity, confidence, frame.arrives_at, observer);
                }
            }
            // Nodes receive activation signals (pay the rx cost).
            for (n, node) in nodes.iter_mut().enumerate() {
                let id = NodeId::new(n as u32);
                for frame in bus.poll(Endpoint::Node(id), t1) {
                    let bytes = frame.message.wire_size();
                    let rx_cost = self.deployment.costs().rx_cost(bytes);
                    let paid = node.pay(rx_cost);
                    if ledger {
                        let uj = if paid { rx_cost.as_microjoules() } else { 0.0 };
                        emit_drawn(observer, w, id, DrawOp::RadioRx, uj);
                    }
                }
            }

            // All energy movement for this window is done: close the
            // ledger slot on every node (scoring below draws nothing).
            if ledger {
                for (n, node) in nodes.iter().enumerate() {
                    observer.on_event(&SimEvent::Ledger {
                        window: w,
                        node: NodeId::new(n as u32),
                        entry: LedgerEntry::SlotClose {
                            stored_uj: node.stored().as_microjoules(),
                        },
                    });
                }
            }

            // Score the host's current output against ground truth.
            match host.classify_observed(w, observer) {
                Some(prediction) => {
                    let pred_dense = activities
                        .dense_index(prediction)
                        .expect("host votes come from in-set classifiers");
                    report.confusion.record(truth_dense, pred_dense);
                }
                None => {
                    report.no_output_windows += 1;
                    report.missed_by_class[truth_dense] += 1;
                }
            }
        }

        report.messages_sent = bus.sent_count();
        report.messages_dropped = bus.dropped_count();
        report.sent_by_node = bus.sent_by_node().to_vec();
        report.dropped_by_node = bus.dropped_by_node().to_vec();
        report.node_counters = nodes.iter().map(|n| n.counters()).collect();
        report.final_confidence = host.confidence().clone();
        Ok(report)
    }
}

/// Emits the harvest-side ledger flows of one [`EnergyNode::advance`]
/// call: `Harvested` (offered), `ChargeLoss`, `Clipped`, the duty
/// `Drawn` and `Leaked`, in that fixed order.
///
/// Declared under `[hot-paths]` in `lint-allow.toml`: with the ledger
/// enabled this runs once per node per window and must stay
/// allocation-free.
fn emit_advance_ledger<O: SimObserver>(
    observer: &mut O,
    window: u64,
    node: NodeId,
    flows: AdvanceFlows,
) {
    observer.on_event(&SimEvent::Ledger {
        window,
        node,
        entry: LedgerEntry::Harvested {
            uj: flows.offered.as_microjoules(),
        },
    });
    observer.on_event(&SimEvent::Ledger {
        window,
        node,
        entry: LedgerEntry::ChargeLoss {
            uj: flows.charge_loss.as_microjoules(),
        },
    });
    observer.on_event(&SimEvent::Ledger {
        window,
        node,
        entry: LedgerEntry::Clipped {
            uj: flows.clipped.as_microjoules(),
        },
    });
    observer.on_event(&SimEvent::Ledger {
        window,
        node,
        entry: LedgerEntry::Drawn {
            op: DrawOp::Duty,
            uj: flows.duty_drawn.as_microjoules(),
        },
    });
    observer.on_event(&SimEvent::Ledger {
        window,
        node,
        entry: LedgerEntry::Leaked {
            uj: flows.leaked.as_microjoules(),
        },
    });
}

/// Emits one `Drawn` ledger entry. Declared under `[hot-paths]` in
/// `lint-allow.toml` alongside [`emit_advance_ledger`].
fn emit_drawn<O: SimObserver>(observer: &mut O, window: u64, node: NodeId, op: DrawOp, uj: f64) {
    observer.on_event(&SimEvent::Ledger {
        window,
        node,
        entry: LedgerEntry::Drawn { op, uj },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_sensors::DatasetSpec;

    fn quick_sim() -> Simulator {
        let spec = DatasetSpec::mhealth_like().with_windows(10, 6);
        let models = ModelBank::<f64>::train(&spec, 21).expect("training succeeds");
        let deployment = Deployment::builder().seed(21).build();
        Simulator::new(deployment, models)
    }

    fn short(policy: PolicyKind) -> SimConfig {
        SimConfig::new(policy)
            .with_horizon(SimDuration::from_secs(300))
            .with_seed(5)
    }

    #[test]
    fn naive_policy_mostly_fails_on_harvested_energy() {
        let sim = quick_sim();
        let report = sim.run(&short(PolicyKind::NaiveAllOn)).unwrap();
        assert_eq!(report.attempt_windows, report.windows);
        let (_all, _some, none) = report.completion_breakdown();
        assert!(none > 0.5, "naive should mostly fail, none = {none}");
        assert!(report.completion_rate() < 0.5);
    }

    #[test]
    fn rr12_completes_more_than_rr3() {
        let sim = quick_sim();
        let rr3 = sim
            .run(&short(PolicyKind::RoundRobin { cycle: 3 }))
            .unwrap();
        let rr12 = sim
            .run(&short(PolicyKind::RoundRobin { cycle: 12 }))
            .unwrap();
        assert!(
            rr12.completion_rate() > rr3.completion_rate(),
            "rr12 {} <= rr3 {}",
            rr12.completion_rate(),
            rr3.completion_rate()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let sim = quick_sim();
        let cfg = short(PolicyKind::Origin { cycle: 12 });
        let a = sim.run(&cfg).unwrap();
        let b = sim.run(&cfg).unwrap();
        assert_eq!(a.accuracy(), b.accuracy());
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.messages_sent, b.messages_sent);
    }

    #[test]
    fn fully_powered_naive_always_completes() {
        let spec = DatasetSpec::mhealth_like().with_windows(10, 6);
        let models = ModelBank::<f64>::train(&spec, 22).unwrap();
        let deployment = Deployment::builder().fully_powered().build();
        let sim = Simulator::new(deployment, models);
        let report = sim.run(&short(PolicyKind::NaiveAllOn)).unwrap();
        let (all, _, none) = report.completion_breakdown();
        assert!(all > 0.99, "all = {all}");
        assert_eq!(none, 0.0);
        // With every sensor voting every window, accuracy is solid.
        assert!(report.accuracy() > 0.7, "accuracy = {}", report.accuracy());
    }

    #[test]
    fn origin_reports_adapt_confidence() {
        let sim = quick_sim();
        let report = sim.run(&short(PolicyKind::Origin { cycle: 12 })).unwrap();
        assert!(report.final_confidence.update_count() > 0);
        // AASR does not adapt.
        let report = sim.run(&short(PolicyKind::Aasr { cycle: 12 })).unwrap();
        assert_eq!(report.final_confidence.update_count(), 0);
    }

    #[test]
    fn report_accounts_every_window() {
        let sim = quick_sim();
        let report = sim.run(&short(PolicyKind::Aas { cycle: 6 })).unwrap();
        assert_eq!(
            report.confusion.total() + report.no_output_windows,
            report.windows
        );
        let missed: u64 = report.missed_by_class.iter().sum();
        assert_eq!(missed, report.no_output_windows);
    }

    #[test]
    fn disabled_nodes_never_complete() {
        let sim = quick_sim();
        let cfg = short(PolicyKind::NaiveAllOn).with_disabled_nodes([origin_types::NodeId::new(1)]);
        let report = sim.run(&cfg).unwrap();
        // Node 1 is scheduled (naive schedules everyone) but never
        // completes; its counters show zero completions.
        assert_eq!(report.node_counters[1].completed, 0);
        // The other two still work.
        let others: u64 = report.node_counters[0].completed + report.node_counters[2].completed;
        assert_eq!(report.completions, others);
    }

    #[test]
    fn ledger_conserves_energy_and_matches_breakdown() {
        let sim = quick_sim();
        let mut auditor = origin_telemetry::LedgerAuditor::default();
        let report = sim
            .run_observed(&short(PolicyKind::Origin { cycle: 12 }), &mut auditor)
            .unwrap();
        let audit = auditor.into_report();
        assert!(audit.slots_audited > 0);
        assert!(
            audit.conserved(),
            "max residual {} over {} slots ({} violations)",
            audit.max_residual_uj,
            audit.slots_audited,
            audit.violations.len()
        );
        // The streamed flows must agree with the report's counters.
        let breakdown = report.energy_breakdown();
        assert!((audit.harvested_uj - breakdown.offered.as_microjoules()).abs() < 1e-6);
        assert!((audit.drawn_uj - breakdown.consumed.as_microjoules()).abs() < 1e-6);
        assert!((audit.leaked_uj - breakdown.leaked.as_microjoules()).abs() < 1e-6);
        assert!((audit.clipped_uj - breakdown.clipped.as_microjoules()).abs() < 1e-6);
    }

    #[test]
    fn energy_breakdown_splits_offered_energy() {
        let sim = quick_sim();
        let report = sim.run(&short(PolicyKind::NaiveAllOn)).unwrap();
        let b = report.energy_breakdown();
        assert!(b.offered > Energy::ZERO);
        let split = b.harvested + b.charge_loss + b.clipped;
        assert!(
            (split.as_microjoules() - b.offered.as_microjoules()).abs() < 1e-6,
            "offered {} != split {}",
            b.offered,
            split
        );
    }

    #[test]
    fn report_display_is_informative() {
        let sim = quick_sim();
        let report = sim.run(&short(PolicyKind::Origin { cycle: 12 })).unwrap();
        let text = report.to_string();
        assert!(text.contains("RR12 Origin"));
        assert!(text.contains("top-1"));
        assert!(text.contains("radio:"));
    }

    #[test]
    fn bad_cycle_errors() {
        let sim = quick_sim();
        let err = sim
            .run(&short(PolicyKind::RoundRobin { cycle: 7 }))
            .unwrap_err();
        assert!(matches!(err, CoreError::BadCycle { .. }));
    }
}
