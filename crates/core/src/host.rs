//! The battery-backed host device (phone).
//!
//! The host is deliberately thin: it remembers the most recent
//! classification per sensor ([`RecallStore`]), keeps the adaptive
//! [`ConfidenceMatrix`], and aggregates votes — "we did not want to burden
//! the host device with complex computation" (Section III-B).

use crate::confidence::ConfidenceMatrix;
use crate::ensemble::{majority_vote, weighted_vote, EnsembleKind, Vote};
use crate::recall::{RecallEntry, RecallStore};
use origin_telemetry::{SimEvent, SimObserver};
use origin_types::{ActivityClass, ActivitySet, NodeId, SimTime};

/// Host-side state: recall + confidence matrix + the configured ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct HostDevice {
    recall: RecallStore,
    confidence: ConfidenceMatrix,
    ensemble: EnsembleKind,
    adapt: bool,
    reports_received: u64,
    aggregations: std::cell::Cell<u64>,
}

impl HostDevice {
    /// A host over `nodes` sensors using `ensemble`, starting from the
    /// given confidence matrix.
    ///
    /// `adapt` controls whether reports update the matrix (Origin adapts;
    /// the static-weights ablation does not).
    ///
    /// # Panics
    ///
    /// Panics when the matrix's node count differs from `nodes`.
    #[must_use]
    pub fn new(
        nodes: usize,
        ensemble: EnsembleKind,
        confidence: ConfidenceMatrix,
        adapt: bool,
    ) -> Self {
        assert_eq!(
            confidence.node_count(),
            nodes,
            "confidence matrix must cover every node"
        );
        Self {
            recall: RecallStore::new(nodes),
            confidence,
            ensemble,
            adapt,
            reports_received: 0,
            aggregations: std::cell::Cell::new(0),
        }
    }

    /// Convenience constructor for ensembles that ignore the matrix.
    #[must_use]
    pub fn without_weights(nodes: usize, ensemble: EnsembleKind, activities: ActivitySet) -> Self {
        Self::new(
            nodes,
            ensemble,
            ConfidenceMatrix::uniform(activities, nodes, ConfidenceMatrix::DEFAULT_ALPHA),
            false,
        )
    }

    /// The recall store.
    #[must_use]
    pub fn recall(&self) -> &RecallStore {
        &self.recall
    }

    /// The confidence matrix.
    #[must_use]
    pub fn confidence(&self) -> &ConfidenceMatrix {
        &self.confidence
    }

    /// The configured aggregation.
    #[must_use]
    pub fn ensemble(&self) -> EnsembleKind {
        self.ensemble
    }

    /// Reports ingested so far — the host's entire input workload
    /// ("poses minimal overhead on the host device", Section III-B).
    #[must_use]
    pub fn reports_received(&self) -> u64 {
        self.reports_received
    }

    /// Aggregations performed so far. Together with
    /// [`HostDevice::reports_received`] this bounds the host's compute:
    /// every operation is O(nodes × classes).
    #[must_use]
    pub fn aggregations(&self) -> u64 {
        self.aggregations.get()
    }

    /// Ingests a classification report from `node`: records it for recall
    /// and (if adaptive) folds its confidence into the matrix.
    pub fn on_report(
        &mut self,
        node: NodeId,
        activity: ActivityClass,
        confidence: f64,
        now: SimTime,
    ) {
        self.reports_received += 1;
        self.recall.record(
            node,
            RecallEntry {
                activity,
                confidence,
                reported_at: now,
            },
        );
        if self.adapt {
            self.confidence.update(node, activity, confidence);
        }
    }

    /// [`HostDevice::on_report`] with telemetry: when the host adapts,
    /// emits one [`SimEvent::ConfidenceUpdate`] carrying the post-update
    /// matrix weight. The observer is a pure consumer — host state is
    /// identical to the unobserved path.
    pub fn on_report_observed<O: SimObserver>(
        &mut self,
        node: NodeId,
        activity: ActivityClass,
        confidence: f64,
        now: SimTime,
        observer: &mut O,
    ) {
        self.on_report(node, activity, confidence, now);
        if self.adapt {
            let weight = self
                .confidence
                .weight(node, activity)
                .expect("the report's (node, activity) is in the matrix");
            observer.on_event(&SimEvent::ConfidenceUpdate {
                node,
                activity,
                weight,
            });
        }
    }

    /// The host's current final classification, or `None` before any
    /// report has arrived.
    #[must_use]
    pub fn classify(&self) -> Option<ActivityClass> {
        self.aggregations.set(self.aggregations.get() + 1);
        match self.ensemble {
            EnsembleKind::SingleLatest => self.recall.most_recent().map(|(_, e)| e.activity),
            EnsembleKind::Majority => majority_vote(&self.votes()),
            EnsembleKind::ConfidenceWeighted => weighted_vote(&self.votes(), &self.confidence),
        }
    }

    /// [`HostDevice::classify`] with telemetry: emits one
    /// [`SimEvent::RecallServed`] (how many per-node votes the recall
    /// store held) and one [`SimEvent::EnsembleVote`] per call, tagged
    /// with `window`. The observer is a pure consumer — the
    /// classification is identical to the unobserved path.
    pub fn classify_observed<O: SimObserver>(
        &self,
        window: u64,
        observer: &mut O,
    ) -> Option<ActivityClass> {
        let prediction = self.classify();
        observer.on_event(&SimEvent::RecallServed {
            window,
            votes: self.recall.votes().count() as u32,
        });
        observer.on_event(&SimEvent::EnsembleVote { window, prediction });
        prediction
    }

    /// The anticipated next activity — "it anticipates the next activity
    /// to be the current classified activity" (Section III-B).
    #[must_use]
    pub fn anticipated(&self) -> Option<ActivityClass> {
        self.classify()
    }

    fn votes(&self) -> Vec<Vote> {
        self.recall
            .votes()
            .map(|(node, e)| Vote {
                node,
                activity: e.activity,
                confidence: e.confidence,
                reported_at: e.reported_at,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(kind: EnsembleKind) -> HostDevice {
        HostDevice::without_weights(3, kind, ActivitySet::mhealth())
    }

    #[test]
    fn single_latest_reports_freshest() {
        let mut h = host(EnsembleKind::SingleLatest);
        assert_eq!(h.classify(), None);
        h.on_report(
            NodeId::new(0),
            ActivityClass::Walking,
            0.1,
            SimTime::from_millis(10),
        );
        h.on_report(
            NodeId::new(1),
            ActivityClass::Running,
            0.1,
            SimTime::from_millis(20),
        );
        assert_eq!(h.classify(), Some(ActivityClass::Running));
        assert_eq!(h.anticipated(), Some(ActivityClass::Running));
    }

    #[test]
    fn majority_uses_recalled_votes() {
        let mut h = host(EnsembleKind::Majority);
        h.on_report(
            NodeId::new(0),
            ActivityClass::Walking,
            0.1,
            SimTime::from_millis(10),
        );
        h.on_report(
            NodeId::new(1),
            ActivityClass::Walking,
            0.1,
            SimTime::from_millis(20),
        );
        h.on_report(
            NodeId::new(2),
            ActivityClass::Running,
            0.1,
            SimTime::from_millis(30),
        );
        assert_eq!(h.classify(), Some(ActivityClass::Walking));
        // The non-participating sensors' old votes persist: node 2 reports
        // again, others recalled.
        h.on_report(
            NodeId::new(2),
            ActivityClass::Walking,
            0.1,
            SimTime::from_millis(40),
        );
        assert_eq!(h.classify(), Some(ActivityClass::Walking));
    }

    #[test]
    fn adaptive_host_updates_matrix() {
        let matrix = ConfidenceMatrix::uniform(ActivitySet::mhealth(), 3, 0.5);
        let mut h = HostDevice::new(3, EnsembleKind::ConfidenceWeighted, matrix, true);
        let before = h
            .confidence()
            .weight(NodeId::new(0), ActivityClass::Walking)
            .unwrap();
        h.on_report(NodeId::new(0), ActivityClass::Walking, 0.9, SimTime::ZERO);
        let after = h
            .confidence()
            .weight(NodeId::new(0), ActivityClass::Walking)
            .unwrap();
        assert!(after > before);
        assert_eq!(h.confidence().update_count(), 1);
    }

    #[test]
    fn non_adaptive_host_keeps_matrix_static() {
        let matrix = ConfidenceMatrix::uniform(ActivitySet::mhealth(), 3, 0.5);
        let mut h = HostDevice::new(3, EnsembleKind::ConfidenceWeighted, matrix, false);
        h.on_report(NodeId::new(0), ActivityClass::Walking, 0.9, SimTime::ZERO);
        assert_eq!(h.confidence().update_count(), 0);
    }

    #[test]
    fn weighted_ensemble_overrides_majority() {
        let mut matrix = ConfidenceMatrix::uniform(ActivitySet::mhealth(), 3, 1.0);
        matrix.update(NodeId::new(2), ActivityClass::Running, 0.9);
        matrix.update(NodeId::new(0), ActivityClass::Walking, 0.05);
        matrix.update(NodeId::new(1), ActivityClass::Walking, 0.05);
        let mut h = HostDevice::new(3, EnsembleKind::ConfidenceWeighted, matrix, false);
        h.on_report(
            NodeId::new(0),
            ActivityClass::Walking,
            0.05,
            SimTime::from_millis(1),
        );
        h.on_report(
            NodeId::new(1),
            ActivityClass::Walking,
            0.05,
            SimTime::from_millis(2),
        );
        h.on_report(
            NodeId::new(2),
            ActivityClass::Running,
            0.9,
            SimTime::from_millis(3),
        );
        assert_eq!(h.classify(), Some(ActivityClass::Running));
    }

    #[test]
    fn host_counters_track_workload() {
        let mut h = host(EnsembleKind::Majority);
        assert_eq!(h.reports_received(), 0);
        h.on_report(NodeId::new(0), ActivityClass::Walking, 0.1, SimTime::ZERO);
        h.on_report(NodeId::new(1), ActivityClass::Walking, 0.1, SimTime::ZERO);
        assert_eq!(h.reports_received(), 2);
        let before = h.aggregations();
        let _ = h.classify();
        let _ = h.classify();
        assert_eq!(h.aggregations(), before + 2);
    }

    #[test]
    fn observed_host_emits_confidence_and_vote_events() {
        use origin_telemetry::{EventKind, RecordingObserver, SimEvent};
        let matrix = ConfidenceMatrix::uniform(ActivitySet::mhealth(), 3, 0.5);
        let mut h = HostDevice::new(3, EnsembleKind::ConfidenceWeighted, matrix, true);
        let mut rec = RecordingObserver::new();
        h.on_report_observed(
            NodeId::new(0),
            ActivityClass::Walking,
            0.9,
            SimTime::ZERO,
            &mut rec,
        );
        assert_eq!(rec.count(EventKind::ConfidenceUpdate), 1);
        match rec.events()[0] {
            SimEvent::ConfidenceUpdate { node, weight, .. } => {
                assert_eq!(node, NodeId::new(0));
                assert_eq!(
                    weight,
                    h.confidence()
                        .weight(NodeId::new(0), ActivityClass::Walking)
                        .unwrap()
                );
            }
            other => panic!("unexpected event {other:?}"),
        }
        let prediction = h.classify_observed(7, &mut rec);
        assert_eq!(prediction, Some(ActivityClass::Walking));
        assert_eq!(rec.count(EventKind::RecallServed), 1);
        assert!(rec.events().contains(&SimEvent::EnsembleVote {
            window: 7,
            prediction: Some(ActivityClass::Walking),
        }));
        // Events must not perturb the host: same answer as the plain path.
        assert_eq!(h.classify(), prediction);
    }

    #[test]
    fn non_adaptive_observed_host_stays_silent_on_reports() {
        use origin_telemetry::{EventKind, RecordingObserver};
        let mut h = host(EnsembleKind::Majority);
        let mut rec = RecordingObserver::new();
        h.on_report_observed(
            NodeId::new(0),
            ActivityClass::Walking,
            0.1,
            SimTime::ZERO,
            &mut rec,
        );
        assert_eq!(rec.count(EventKind::ConfidenceUpdate), 0);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn node_count_mismatch_panics() {
        let matrix = ConfidenceMatrix::uniform(ActivitySet::mhealth(), 2, 0.5);
        let _ = HostDevice::new(3, EnsembleKind::Majority, matrix, false);
    }
}
