//! Ensemble aggregation: majority voting and confidence-weighted voting.

use crate::confidence::ConfidenceMatrix;
use origin_types::{ActivityClass, NodeId, SimTime};

/// One vote available to the aggregator — a (possibly recalled) sensor
/// classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vote {
    /// The voting sensor.
    pub node: NodeId,
    /// The voted class.
    pub activity: ActivityClass,
    /// The sensor's reported confidence (softmax variance).
    pub confidence: f64,
    /// When the vote was originally reported (recalled votes are old).
    pub reported_at: SimTime,
}

/// Which aggregation the host runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnsembleKind {
    /// No ensemble: the most recent single classification wins (plain
    /// ER-r and AAS).
    SingleLatest,
    /// Naive majority voting over the recalled votes (AASR and both
    /// baselines).
    Majority,
    /// Weighted majority voting with the adaptive confidence matrix
    /// (Origin).
    ConfidenceWeighted,
}

/// Naive majority vote. Ties resolve toward the class whose supporting
/// vote is most recent (the freshest evidence).
///
/// Returns `None` when `votes` is empty.
#[must_use]
pub fn majority_vote(votes: &[Vote]) -> Option<ActivityClass> {
    if votes.is_empty() {
        return None;
    }
    let mut counts: Vec<(ActivityClass, usize, SimTime)> = Vec::new();
    for vote in votes {
        match counts.iter_mut().find(|(c, _, _)| *c == vote.activity) {
            Some((_, n, newest)) => {
                *n += 1;
                if vote.reported_at > *newest {
                    *newest = vote.reported_at;
                }
            }
            None => counts.push((vote.activity, 1, vote.reported_at)),
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(a.2.cmp(&b.2)))
        .map(|(c, _, _)| c)
}

/// Confidence-weighted majority vote: each vote contributes the matrix
/// weight of its (sensor, class) cell, modulated by the confidence score
/// the sensor reported with that classification (sensors "send the
/// confidence score for that classifier along with the output class",
/// Section III-C). The class with the highest total wins. The weights
/// "boost the classification accuracy and also resolve ties while voting"
/// (Section III-D) — exact ties are broken by the freshest supporting
/// vote, mirroring [`majority_vote`].
///
/// Votes for classes outside the matrix's activity set are skipped.
/// Returns `None` when no usable votes remain.
#[must_use]
pub fn weighted_vote(votes: &[Vote], matrix: &ConfidenceMatrix) -> Option<ActivityClass> {
    let mut scores: Vec<(ActivityClass, f64, SimTime)> = Vec::new();
    for vote in votes {
        let Some(cell) = matrix.weight(vote.node, vote.activity) else {
            continue;
        };
        let weight = cell * vote.confidence.max(0.0);
        match scores.iter_mut().find(|(c, _, _)| *c == vote.activity) {
            Some((_, total, newest)) => {
                *total += weight;
                if vote.reported_at > *newest {
                    *newest = vote.reported_at;
                }
            }
            None => scores.push((vote.activity, weight, vote.reported_at)),
        }
    }
    scores
        .into_iter()
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("weights are finite")
                .then(a.2.cmp(&b.2))
        })
        .map(|(c, _, _)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_types::ActivitySet;

    fn vote(node: u32, activity: ActivityClass, at_ms: u64) -> Vote {
        Vote {
            node: NodeId::new(node),
            activity,
            confidence: 0.1,
            reported_at: SimTime::from_millis(at_ms),
        }
    }

    #[test]
    fn majority_picks_most_common() {
        let votes = [
            vote(0, ActivityClass::Walking, 10),
            vote(1, ActivityClass::Walking, 20),
            vote(2, ActivityClass::Running, 30),
        ];
        assert_eq!(majority_vote(&votes), Some(ActivityClass::Walking));
    }

    #[test]
    fn majority_tie_breaks_by_recency() {
        let votes = [
            vote(0, ActivityClass::Walking, 10),
            vote(1, ActivityClass::Running, 30),
        ];
        assert_eq!(majority_vote(&votes), Some(ActivityClass::Running));
        assert_eq!(majority_vote(&[]), None);
    }

    #[test]
    fn weighted_vote_respects_matrix() {
        let set = ActivitySet::mhealth();
        let mut matrix = ConfidenceMatrix::uniform(set, 3, 1.0);
        // Node 2 is extremely trusted for Running; nodes 0+1 weakly trusted
        // for Walking.
        matrix.update(NodeId::new(2), ActivityClass::Running, 0.9);
        matrix.update(NodeId::new(0), ActivityClass::Walking, 0.2);
        matrix.update(NodeId::new(1), ActivityClass::Walking, 0.2);
        let votes = [
            vote(0, ActivityClass::Walking, 10),
            vote(1, ActivityClass::Walking, 20),
            vote(2, ActivityClass::Running, 30),
        ];
        // 0.9 > 0.2 + 0.2: the single confident vote outweighs the pair.
        assert_eq!(weighted_vote(&votes, &matrix), Some(ActivityClass::Running));
        // Plain majority would say Walking.
        assert_eq!(majority_vote(&votes), Some(ActivityClass::Walking));
    }

    #[test]
    fn weighted_vote_skips_out_of_set_votes() {
        let set = ActivitySet::pamap2(); // no jogging
        let matrix = ConfidenceMatrix::uniform(set, 2, 0.5);
        let votes = [
            vote(0, ActivityClass::Jogging, 10),
            vote(1, ActivityClass::Walking, 5),
        ];
        assert_eq!(weighted_vote(&votes, &matrix), Some(ActivityClass::Walking));
        let only_out = [vote(0, ActivityClass::Jogging, 10)];
        assert_eq!(weighted_vote(&only_out, &matrix), None);
    }

    #[test]
    fn weighted_vote_empty_is_none() {
        let matrix = ConfidenceMatrix::uniform(ActivitySet::mhealth(), 1, 0.5);
        assert_eq!(weighted_vote(&[], &matrix), None);
    }
}
