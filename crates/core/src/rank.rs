//! The per-activity sensor rank table behind activity-aware scheduling.
//!
//! "To enable the activity awareness we keep a small lookup table of
//! accuracy of all the sensors over all the classes. However, accuracy
//! being a floating point number, is expensive ... instead of storing the
//! accuracy, we store the rank of the sensors" (Section III-B). The table
//! is built once from each deployed classifier's validation confusion
//! matrix and holds only small integers, exactly like the paper's.

use origin_nn::ConfusionMatrix;
use origin_types::{ActivityClass, ActivitySet, NodeId};

/// For every activity, the sensor nodes ordered best-first by validation
/// per-class accuracy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankTable {
    activities: ActivitySet,
    // ranking[dense_class][position] = node id
    ranking: Vec<Vec<NodeId>>,
}

impl RankTable {
    /// Builds the table from one validation confusion matrix per node
    /// (indexed by node id).
    ///
    /// Ties are broken toward the lower node id, which keeps the table
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics when `matrices` is empty or a matrix's class count differs
    /// from `activities`.
    #[must_use]
    pub fn from_validation(activities: ActivitySet, matrices: &[ConfusionMatrix]) -> Self {
        assert!(!matrices.is_empty(), "need at least one node");
        for m in matrices {
            assert_eq!(
                m.classes(),
                activities.len(),
                "confusion matrix class count must match the activity set"
            );
        }
        let mut ranking = Vec::with_capacity(activities.len());
        for dense in 0..activities.len() {
            let mut nodes: Vec<(NodeId, f64)> = matrices
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    (
                        NodeId::new(i as u32),
                        m.class_accuracy(dense).unwrap_or(0.0),
                    )
                })
                .collect();
            nodes.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("accuracies are finite")
                    .then(a.0.cmp(&b.0))
            });
            ranking.push(nodes.into_iter().map(|(id, _)| id).collect());
        }
        Self {
            activities,
            ranking,
        }
    }

    /// The activity set the table covers.
    #[must_use]
    pub fn activities(&self) -> &ActivitySet {
        &self.activities
    }

    /// The best sensor for `activity`, or `None` when the activity is not
    /// in the set.
    #[must_use]
    pub fn best(&self, activity: ActivityClass) -> Option<NodeId> {
        self.ordered(activity).and_then(|r| r.first().copied())
    }

    /// All sensors for `activity`, best first.
    #[must_use]
    pub fn ordered(&self, activity: ActivityClass) -> Option<&[NodeId]> {
        let dense = self.activities.dense_index(activity)?;
        Some(&self.ranking[dense])
    }

    /// Number of nodes ranked.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.ranking.first().map_or(0, Vec::len)
    }

    /// Memory footprint of the table in bytes if stored as packed node
    /// indices — the quantity the paper minimizes by storing ranks instead
    /// of floating-point accuracies.
    #[must_use]
    pub fn packed_size_bytes(&self) -> usize {
        self.activities.len() * self.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(diag: &[u64]) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(diag.len());
        for (c, &correct) in diag.iter().enumerate() {
            for _ in 0..correct {
                m.record(c, c);
            }
            for _ in 0..(10 - correct) {
                m.record(c, (c + 1) % diag.len());
            }
        }
        m
    }

    fn small_set() -> ActivitySet {
        ActivitySet::new([ActivityClass::Walking, ActivityClass::Running]).unwrap()
    }

    #[test]
    fn ranks_by_class_accuracy() {
        // Node 0: walking 9/10, running 2/10. Node 1: walking 5/10, running 8/10.
        let table = RankTable::from_validation(small_set(), &[matrix(&[9, 2]), matrix(&[5, 8])]);
        assert_eq!(table.best(ActivityClass::Walking), Some(NodeId::new(0)));
        assert_eq!(table.best(ActivityClass::Running), Some(NodeId::new(1)));
        assert_eq!(
            table.ordered(ActivityClass::Walking).unwrap(),
            &[NodeId::new(0), NodeId::new(1)]
        );
    }

    #[test]
    fn ties_break_to_lower_id() {
        let table = RankTable::from_validation(small_set(), &[matrix(&[7, 7]), matrix(&[7, 7])]);
        assert_eq!(table.best(ActivityClass::Walking), Some(NodeId::new(0)));
    }

    #[test]
    fn missing_activity_is_none() {
        let table = RankTable::from_validation(small_set(), &[matrix(&[5, 5])]);
        assert_eq!(table.best(ActivityClass::Cycling), None);
        assert!(table.ordered(ActivityClass::Jumping).is_none());
    }

    #[test]
    fn packed_size_is_tiny() {
        let table = RankTable::from_validation(
            ActivitySet::mhealth(),
            &[matrix(&[5; 6]), matrix(&[5; 6]), matrix(&[6; 6])],
        );
        // 6 activities x 3 nodes x 1 byte — "a small lookup table".
        assert_eq!(table.packed_size_bytes(), 18);
        assert_eq!(table.node_count(), 3);
    }

    #[test]
    #[should_panic(expected = "class count")]
    fn class_count_mismatch_panics() {
        let _ = RankTable::from_validation(ActivitySet::mhealth(), &[matrix(&[5, 5])]);
    }
}
