//! The per-sensor model bank: Baseline-1 and Baseline-2 classifiers.
//!
//! "Baseline-1 consists of the original DNNs ... (without any pruning).
//! Baseline-2 uses state of the art pruning techniques ... to prune the
//! DNNs of Baseline-1 to fit the average harvested power budget. ...
//! Origin uses the DNNs of Baseline-2 for the classification tasks"
//! (Section IV-C).
//!
//! The bank is generic over the NN kernel scalar (`ModelBank<f64>` by
//! default, `ModelBank<f32>` for the narrow compute path); raw features,
//! confusion matrices and confidence weights stay `f64` either way. The
//! per-location classifiers are independent — each draws its own seeded
//! RNG streams — so training fans out over [`parallel_map`] without
//! changing a single bit of any trained model.

use crate::confidence::ConfidenceMatrix;
use crate::error::CoreError;
use crate::parallel::parallel_map;
use crate::rank::RankTable;
use origin_nn::{
    prune_to_energy, ConfusionMatrix, InferenceEnergyModel, Scalar, SensorClassifier, Trainer,
};
use origin_sensors::{DatasetSpec, HarDataset};
use origin_telemetry::StageTimings;
use origin_types::{ActivitySet, Energy, SensorLocation};

/// Which classifier variant an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    /// The original unpruned networks (Baseline-1).
    Unpruned,
    /// The energy-aware-pruned networks (Baseline-2 and all EH policies).
    Pruned,
}

/// Everything one location's training produces, in location order.
type LocationOutcome<S> = (
    SensorClassifier<S>,
    SensorClassifier<S>,
    ConfusionMatrix,
    ConfusionMatrix,
    Vec<(Vec<f64>, usize)>,
    StageTimings,
);

/// Trained unpruned + pruned classifiers for every sensor location, with
/// their validation confusion matrices and derived tables.
#[derive(Debug, Clone)]
pub struct ModelBank<S: Scalar = f64> {
    spec: DatasetSpec,
    activities: ActivitySet,
    energy_model: InferenceEnergyModel,
    budget: Energy,
    unpruned: Vec<SensorClassifier<S>>,
    pruned: Vec<SensorClassifier<S>>,
    unpruned_cm: Vec<ConfusionMatrix>,
    pruned_cm: Vec<ConfusionMatrix>,
    validation: Vec<Vec<(Vec<f64>, usize)>>,
}

impl<S: Scalar> ModelBank<S> {
    /// Default per-inference pruning budget, µJ. Matches
    /// [`InferenceEnergyModel::budget_from_power`] applied to the default
    /// WiFi office trace (≈40 µW mean) over a 500 ms window with the
    /// default slack.
    pub const DEFAULT_BUDGET_UJ: f64 = 80.0;

    /// Hidden-layer widths per location — "three different smaller DNNs
    /// that work on their individual data" (Section IV-B).
    #[must_use]
    pub fn hidden_for(location: SensorLocation) -> &'static [usize] {
        match location {
            SensorLocation::Chest => &[18],
            SensorLocation::LeftAnkle => &[24],
            SensorLocation::RightWrist => &[16],
        }
    }

    /// Trains the full bank with the default pruning budget.
    ///
    /// # Errors
    ///
    /// Propagates training and pruning failures.
    pub fn train(spec: &DatasetSpec, seed: u64) -> Result<Self, CoreError> {
        Self::train_with_budget(
            spec,
            seed,
            Energy::from_microjoules(Self::DEFAULT_BUDGET_UJ),
        )
    }

    /// [`ModelBank::train`] with the per-location fits fanned out over
    /// `threads` workers ([`parallel_map`] semantics: `0` = all cores).
    /// Every location's SGD epochs stay sequential inside one worker, so
    /// the trained bank is bitwise identical at every thread count.
    ///
    /// # Errors
    ///
    /// Propagates training and pruning failures.
    pub fn train_parallel(
        spec: &DatasetSpec,
        seed: u64,
        threads: usize,
    ) -> Result<Self, CoreError> {
        Self::train_instrumented_parallel(
            spec,
            seed,
            Energy::from_microjoules(Self::DEFAULT_BUDGET_UJ),
            threads,
            &mut StageTimings::new(),
        )
    }

    /// Trains the full bank, pruning Baseline-2 to `budget` per inference.
    ///
    /// # Errors
    ///
    /// Propagates training failures and [`origin_nn::NnError::BudgetUnreachable`]
    /// for budgets below the static energy floor.
    pub fn train_with_budget(
        spec: &DatasetSpec,
        seed: u64,
        budget: Energy,
    ) -> Result<Self, CoreError> {
        Self::train_instrumented(spec, seed, budget, &mut StageTimings::new())
    }

    /// [`ModelBank::train_with_budget`] with kernel-level stage timing:
    /// accumulates the wall-clock cost of SGD fitting (`nn_fit`),
    /// energy-aware pruning + fine-tuning (`nn_prune`) and held-out
    /// evaluation (`nn_eval`) into `timings` across all sensor locations.
    /// Timing never changes what is trained — results are bitwise
    /// identical to the untimed path.
    ///
    /// # Errors
    ///
    /// Propagates training failures and [`origin_nn::NnError::BudgetUnreachable`]
    /// for budgets below the static energy floor.
    pub fn train_instrumented(
        spec: &DatasetSpec,
        seed: u64,
        budget: Energy,
        timings: &mut StageTimings,
    ) -> Result<Self, CoreError> {
        Self::train_instrumented_parallel(spec, seed, budget, 1, timings)
    }

    /// [`ModelBank::train_instrumented`] with the per-location work fanned
    /// out over `threads` workers. Each worker records its stage costs
    /// into a private [`StageTimings`]; the per-location timings merge
    /// into `timings` in location order after the join, so stage keys
    /// appear in the same order as the serial path.
    ///
    /// # Errors
    ///
    /// Propagates training failures and [`origin_nn::NnError::BudgetUnreachable`]
    /// for budgets below the static energy floor.
    pub fn train_instrumented_parallel(
        spec: &DatasetSpec,
        seed: u64,
        budget: Energy,
        threads: usize,
        timings: &mut StageTimings,
    ) -> Result<Self, CoreError> {
        let dataset = HarDataset::generate(spec, seed);
        let energy_model = InferenceEnergyModel::default();
        // Label smoothing keeps the softmax calibrated so its variance
        // carries real confidence signal (Section III-C's metric).
        let trainer = Trainer::new()
            .with_epochs(140)
            .with_seed(seed)
            .with_label_smoothing(0.1)?;

        // Each location's training is self-contained: its RNG streams
        // derive from (seed, location) and nothing is shared mutably, so
        // the fan-out cannot change what any worker computes.
        let outcomes: Vec<Result<LocationOutcome<S>, CoreError>> =
            parallel_map(threads, &SensorLocation::ALL, |_, &location| {
                let mut local = StageTimings::new();
                let sensor = dataset.sensor(location);
                let train: Vec<(Vec<f64>, usize)> = sensor
                    .train
                    .iter()
                    .map(|s| (s.features.clone(), s.dense_label))
                    .collect();
                let test: Vec<(Vec<f64>, usize)> = sensor
                    .test
                    .iter()
                    .map(|s| (s.features.clone(), s.dense_label))
                    .collect();

                let full = local.time("nn_fit", || {
                    SensorClassifier::train(
                        Self::hidden_for(location),
                        &train,
                        spec.activities.clone(),
                        &trainer,
                        seed ^ (location.index() as u64 + 1).wrapping_mul(0x9E37_79B9),
                    )
                })?;
                let unpruned_cm = local.time("nn_eval", || full.evaluate(&test))?;

                // Baseline-2: energy-aware pruning with brief fine-tuning
                // rounds (short on purpose — the accuracy drop is the point).
                let mut lean = full.clone();
                let norm_train = lean.normalize_data(&train);
                local.time("nn_prune", || {
                    prune_to_energy(
                        lean.mlp_mut(),
                        &energy_model,
                        budget,
                        &norm_train,
                        &trainer,
                        0.15,
                        1,
                    )
                })?;
                let pruned_cm = local.time("nn_eval", || lean.evaluate(&test))?;

                Ok((full, lean, unpruned_cm, pruned_cm, test, local))
            });

        let mut unpruned = Vec::with_capacity(SensorLocation::COUNT);
        let mut pruned = Vec::with_capacity(SensorLocation::COUNT);
        let mut unpruned_cm = Vec::with_capacity(SensorLocation::COUNT);
        let mut pruned_cm = Vec::with_capacity(SensorLocation::COUNT);
        let mut validation = Vec::with_capacity(SensorLocation::COUNT);
        for outcome in outcomes {
            let (full, lean, ucm, pcm, test, local) = outcome?;
            for (name, elapsed) in local.iter() {
                timings.record(name, elapsed);
            }
            unpruned.push(full);
            pruned.push(lean);
            unpruned_cm.push(ucm);
            pruned_cm.push(pcm);
            validation.push(test);
        }

        Ok(Self {
            spec: spec.clone(),
            activities: spec.activities.clone(),
            energy_model,
            budget,
            unpruned,
            pruned,
            unpruned_cm,
            pruned_cm,
            validation,
        })
    }

    /// The dataset spec the bank was trained from.
    #[must_use]
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The class set.
    #[must_use]
    pub fn activities(&self) -> &ActivitySet {
        &self.activities
    }

    /// The energy model costs are predicted with.
    #[must_use]
    pub fn energy_model(&self) -> &InferenceEnergyModel {
        &self.energy_model
    }

    /// The pruning budget Baseline-2 was fitted to.
    #[must_use]
    pub fn budget(&self) -> Energy {
        self.budget
    }

    /// The classifier for `location` in the requested variant.
    #[must_use]
    pub fn classifier(
        &self,
        variant: ModelVariant,
        location: SensorLocation,
    ) -> &SensorClassifier<S> {
        match variant {
            ModelVariant::Unpruned => &self.unpruned[location.index()],
            ModelVariant::Pruned => &self.pruned[location.index()],
        }
    }

    /// Validation confusion matrix for `location` in the requested
    /// variant.
    #[must_use]
    pub fn validation_confusion(
        &self,
        variant: ModelVariant,
        location: SensorLocation,
    ) -> &ConfusionMatrix {
        match variant {
            ModelVariant::Unpruned => &self.unpruned_cm[location.index()],
            ModelVariant::Pruned => &self.pruned_cm[location.index()],
        }
    }

    /// Predicted per-inference energy for `location` in the requested
    /// variant.
    #[must_use]
    pub fn inference_energy(&self, variant: ModelVariant, location: SensorLocation) -> Energy {
        self.classifier(variant, location)
            .inference_energy(&self.energy_model)
    }

    /// The AAS rank table, built from the *deployed* (pruned) models'
    /// validation accuracy.
    #[must_use]
    pub fn rank_table(&self) -> RankTable {
        RankTable::from_validation(self.activities.clone(), &self.pruned_cm)
    }

    /// The initial confidence matrix, from the pruned models' validation
    /// softmax variance (Section III-C).
    #[must_use]
    pub fn confidence_matrix(&self, alpha: f64) -> ConfidenceMatrix {
        ConfidenceMatrix::from_validation(&self.pruned, &self.validation, alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DatasetSpec {
        DatasetSpec::mhealth_like().with_windows(12, 8)
    }

    #[test]
    fn bank_trains_both_variants() {
        let bank = ModelBank::<f64>::train(&small_spec(), 7).unwrap();
        for loc in SensorLocation::ALL {
            let full = bank.inference_energy(ModelVariant::Unpruned, loc);
            let lean = bank.inference_energy(ModelVariant::Pruned, loc);
            assert!(lean < full, "{loc}: pruning must reduce energy");
            assert!(lean <= bank.budget(), "{loc}: pruned model over budget");
            assert!(bank.classifier(ModelVariant::Pruned, loc).mlp().sparsity() > 0.3);
        }
    }

    #[test]
    fn validation_matrices_are_populated() {
        let bank = ModelBank::<f64>::train(&small_spec(), 8).unwrap();
        for loc in SensorLocation::ALL {
            for variant in [ModelVariant::Unpruned, ModelVariant::Pruned] {
                let cm = bank.validation_confusion(variant, loc);
                assert_eq!(cm.total(), 8 * 6);
                assert!(cm.accuracy().unwrap() > 0.3, "{loc} degenerate accuracy");
            }
        }
    }

    #[test]
    fn derived_tables_are_consistent() {
        let bank = ModelBank::<f64>::train(&small_spec(), 9).unwrap();
        let rank = bank.rank_table();
        assert_eq!(rank.node_count(), 3);
        assert_eq!(rank.activities(), bank.activities());
        let cm = bank.confidence_matrix(0.1);
        assert_eq!(cm.node_count(), 3);
        assert_eq!(cm.activities(), bank.activities());
    }

    #[test]
    fn training_is_deterministic() {
        let a = ModelBank::<f64>::train(&small_spec(), 11).unwrap();
        let b = ModelBank::<f64>::train(&small_spec(), 11).unwrap();
        for loc in SensorLocation::ALL {
            assert_eq!(
                a.classifier(ModelVariant::Pruned, loc).mlp(),
                b.classifier(ModelVariant::Pruned, loc).mlp()
            );
        }
    }

    /// The parallel-training satellite's pin: fanning the per-location
    /// fits over workers must not change a single trained bit, at either
    /// precision.
    #[test]
    fn parallel_training_is_bitwise_identical() {
        fn check<S: Scalar>() {
            let serial = ModelBank::<S>::train(&small_spec(), 13).unwrap();
            let wide = ModelBank::<S>::train_parallel(&small_spec(), 13, 3).unwrap();
            for loc in SensorLocation::ALL {
                for variant in [ModelVariant::Unpruned, ModelVariant::Pruned] {
                    assert_eq!(
                        serial.classifier(variant, loc).mlp(),
                        wide.classifier(variant, loc).mlp(),
                        "{loc}: parallel training diverged at {}",
                        S::DTYPE
                    );
                    assert_eq!(
                        serial.validation_confusion(variant, loc),
                        wide.validation_confusion(variant, loc)
                    );
                }
            }
        }
        check::<f64>();
        check::<f32>();
    }

    #[test]
    fn parallel_training_merges_stage_timings() {
        let mut timings = StageTimings::new();
        let _ = ModelBank::<f64>::train_instrumented_parallel(
            &small_spec(),
            14,
            Energy::from_microjoules(ModelBank::<f64>::DEFAULT_BUDGET_UJ),
            3,
            &mut timings,
        )
        .unwrap();
        let keys: Vec<&str> = timings.iter().map(|(n, _)| n).collect();
        assert_eq!(keys, ["nn_fit", "nn_eval", "nn_prune"]);
    }

    #[test]
    fn f32_bank_trains_and_stays_under_budget() {
        let bank = ModelBank::<f32>::train(&small_spec(), 7).unwrap();
        for loc in SensorLocation::ALL {
            let lean = bank.inference_energy(ModelVariant::Pruned, loc);
            assert!(lean <= bank.budget(), "{loc}: f32 pruned model over budget");
            let cm = bank.validation_confusion(ModelVariant::Pruned, loc);
            assert!(
                cm.accuracy().unwrap() > 0.3,
                "{loc} degenerate f32 accuracy"
            );
        }
    }

    #[test]
    fn hidden_sizes_differ_per_location() {
        let sizes: Vec<&[usize]> = SensorLocation::ALL
            .iter()
            .map(|&l| ModelBank::<f64>::hidden_for(l))
            .collect();
        assert_ne!(sizes[0], sizes[1]);
        assert_ne!(sizes[1], sizes[2]);
    }
}
