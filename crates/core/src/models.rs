//! The per-sensor model bank: Baseline-1 and Baseline-2 classifiers.
//!
//! "Baseline-1 consists of the original DNNs ... (without any pruning).
//! Baseline-2 uses state of the art pruning techniques ... to prune the
//! DNNs of Baseline-1 to fit the average harvested power budget. ...
//! Origin uses the DNNs of Baseline-2 for the classification tasks"
//! (Section IV-C).

use crate::confidence::ConfidenceMatrix;
use crate::error::CoreError;
use crate::rank::RankTable;
use origin_nn::{
    prune_to_energy, ConfusionMatrix, InferenceEnergyModel, SensorClassifier, Trainer,
};
use origin_sensors::{DatasetSpec, HarDataset};
use origin_telemetry::StageTimings;
use origin_types::{ActivitySet, Energy, SensorLocation};

/// Which classifier variant an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    /// The original unpruned networks (Baseline-1).
    Unpruned,
    /// The energy-aware-pruned networks (Baseline-2 and all EH policies).
    Pruned,
}

/// Trained unpruned + pruned classifiers for every sensor location, with
/// their validation confusion matrices and derived tables.
#[derive(Debug, Clone)]
pub struct ModelBank {
    spec: DatasetSpec,
    activities: ActivitySet,
    energy_model: InferenceEnergyModel,
    budget: Energy,
    unpruned: Vec<SensorClassifier>,
    pruned: Vec<SensorClassifier>,
    unpruned_cm: Vec<ConfusionMatrix>,
    pruned_cm: Vec<ConfusionMatrix>,
    validation: Vec<Vec<(Vec<f64>, usize)>>,
}

impl ModelBank {
    /// Default per-inference pruning budget, µJ. Matches
    /// [`InferenceEnergyModel::budget_from_power`] applied to the default
    /// WiFi office trace (≈40 µW mean) over a 500 ms window with the
    /// default slack.
    pub const DEFAULT_BUDGET_UJ: f64 = 80.0;

    /// Hidden-layer widths per location — "three different smaller DNNs
    /// that work on their individual data" (Section IV-B).
    #[must_use]
    pub fn hidden_for(location: SensorLocation) -> &'static [usize] {
        match location {
            SensorLocation::Chest => &[18],
            SensorLocation::LeftAnkle => &[24],
            SensorLocation::RightWrist => &[16],
        }
    }

    /// Trains the full bank with the default pruning budget.
    ///
    /// # Errors
    ///
    /// Propagates training and pruning failures.
    pub fn train(spec: &DatasetSpec, seed: u64) -> Result<Self, CoreError> {
        Self::train_with_budget(
            spec,
            seed,
            Energy::from_microjoules(Self::DEFAULT_BUDGET_UJ),
        )
    }

    /// Trains the full bank, pruning Baseline-2 to `budget` per inference.
    ///
    /// # Errors
    ///
    /// Propagates training failures and [`origin_nn::NnError::BudgetUnreachable`]
    /// for budgets below the static energy floor.
    pub fn train_with_budget(
        spec: &DatasetSpec,
        seed: u64,
        budget: Energy,
    ) -> Result<Self, CoreError> {
        Self::train_instrumented(spec, seed, budget, &mut StageTimings::new())
    }

    /// [`ModelBank::train_with_budget`] with kernel-level stage timing:
    /// accumulates the wall-clock cost of SGD fitting (`nn_fit`),
    /// energy-aware pruning + fine-tuning (`nn_prune`) and held-out
    /// evaluation (`nn_eval`) into `timings` across all sensor locations.
    /// Timing never changes what is trained — results are bitwise
    /// identical to the untimed path.
    ///
    /// # Errors
    ///
    /// Propagates training failures and [`origin_nn::NnError::BudgetUnreachable`]
    /// for budgets below the static energy floor.
    pub fn train_instrumented(
        spec: &DatasetSpec,
        seed: u64,
        budget: Energy,
        timings: &mut StageTimings,
    ) -> Result<Self, CoreError> {
        let dataset = HarDataset::generate(spec, seed);
        let energy_model = InferenceEnergyModel::default();
        // Label smoothing keeps the softmax calibrated so its variance
        // carries real confidence signal (Section III-C's metric).
        let trainer = Trainer::new()
            .with_epochs(140)
            .with_seed(seed)
            .with_label_smoothing(0.1)?;
        let mut unpruned = Vec::with_capacity(SensorLocation::COUNT);
        let mut pruned = Vec::with_capacity(SensorLocation::COUNT);
        let mut unpruned_cm = Vec::with_capacity(SensorLocation::COUNT);
        let mut pruned_cm = Vec::with_capacity(SensorLocation::COUNT);
        let mut validation = Vec::with_capacity(SensorLocation::COUNT);

        for location in SensorLocation::ALL {
            let sensor = dataset.sensor(location);
            let train: Vec<(Vec<f64>, usize)> = sensor
                .train
                .iter()
                .map(|s| (s.features.clone(), s.dense_label))
                .collect();
            let test: Vec<(Vec<f64>, usize)> = sensor
                .test
                .iter()
                .map(|s| (s.features.clone(), s.dense_label))
                .collect();

            let full = timings.time("nn_fit", || {
                SensorClassifier::train(
                    Self::hidden_for(location),
                    &train,
                    spec.activities.clone(),
                    &trainer,
                    seed ^ (location.index() as u64 + 1).wrapping_mul(0x9E37_79B9),
                )
            })?;
            unpruned_cm.push(timings.time("nn_eval", || full.evaluate(&test))?);

            // Baseline-2: energy-aware pruning with brief fine-tuning
            // rounds (short on purpose — the accuracy drop is the point).
            let mut lean = full.clone();
            let norm_train = lean.normalize_data(&train);
            timings.time("nn_prune", || {
                prune_to_energy(
                    lean.mlp_mut(),
                    &energy_model,
                    budget,
                    &norm_train,
                    &trainer,
                    0.15,
                    1,
                )
            })?;
            pruned_cm.push(timings.time("nn_eval", || lean.evaluate(&test))?);

            unpruned.push(full);
            pruned.push(lean);
            validation.push(test);
        }

        Ok(Self {
            spec: spec.clone(),
            activities: spec.activities.clone(),
            energy_model,
            budget,
            unpruned,
            pruned,
            unpruned_cm,
            pruned_cm,
            validation,
        })
    }

    /// The dataset spec the bank was trained from.
    #[must_use]
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The class set.
    #[must_use]
    pub fn activities(&self) -> &ActivitySet {
        &self.activities
    }

    /// The energy model costs are predicted with.
    #[must_use]
    pub fn energy_model(&self) -> &InferenceEnergyModel {
        &self.energy_model
    }

    /// The pruning budget Baseline-2 was fitted to.
    #[must_use]
    pub fn budget(&self) -> Energy {
        self.budget
    }

    /// The classifier for `location` in the requested variant.
    #[must_use]
    pub fn classifier(&self, variant: ModelVariant, location: SensorLocation) -> &SensorClassifier {
        match variant {
            ModelVariant::Unpruned => &self.unpruned[location.index()],
            ModelVariant::Pruned => &self.pruned[location.index()],
        }
    }

    /// Validation confusion matrix for `location` in the requested
    /// variant.
    #[must_use]
    pub fn validation_confusion(
        &self,
        variant: ModelVariant,
        location: SensorLocation,
    ) -> &ConfusionMatrix {
        match variant {
            ModelVariant::Unpruned => &self.unpruned_cm[location.index()],
            ModelVariant::Pruned => &self.pruned_cm[location.index()],
        }
    }

    /// Predicted per-inference energy for `location` in the requested
    /// variant.
    #[must_use]
    pub fn inference_energy(&self, variant: ModelVariant, location: SensorLocation) -> Energy {
        self.classifier(variant, location)
            .inference_energy(&self.energy_model)
    }

    /// The AAS rank table, built from the *deployed* (pruned) models'
    /// validation accuracy.
    #[must_use]
    pub fn rank_table(&self) -> RankTable {
        RankTable::from_validation(self.activities.clone(), &self.pruned_cm)
    }

    /// The initial confidence matrix, from the pruned models' validation
    /// softmax variance (Section III-C).
    #[must_use]
    pub fn confidence_matrix(&self, alpha: f64) -> ConfidenceMatrix {
        ConfidenceMatrix::from_validation(&self.pruned, &self.validation, alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DatasetSpec {
        DatasetSpec::mhealth_like().with_windows(12, 8)
    }

    #[test]
    fn bank_trains_both_variants() {
        let bank = ModelBank::train(&small_spec(), 7).unwrap();
        for loc in SensorLocation::ALL {
            let full = bank.inference_energy(ModelVariant::Unpruned, loc);
            let lean = bank.inference_energy(ModelVariant::Pruned, loc);
            assert!(lean < full, "{loc}: pruning must reduce energy");
            assert!(lean <= bank.budget(), "{loc}: pruned model over budget");
            assert!(bank.classifier(ModelVariant::Pruned, loc).mlp().sparsity() > 0.3);
        }
    }

    #[test]
    fn validation_matrices_are_populated() {
        let bank = ModelBank::train(&small_spec(), 8).unwrap();
        for loc in SensorLocation::ALL {
            for variant in [ModelVariant::Unpruned, ModelVariant::Pruned] {
                let cm = bank.validation_confusion(variant, loc);
                assert_eq!(cm.total(), 8 * 6);
                assert!(cm.accuracy().unwrap() > 0.3, "{loc} degenerate accuracy");
            }
        }
    }

    #[test]
    fn derived_tables_are_consistent() {
        let bank = ModelBank::train(&small_spec(), 9).unwrap();
        let rank = bank.rank_table();
        assert_eq!(rank.node_count(), 3);
        assert_eq!(rank.activities(), bank.activities());
        let cm = bank.confidence_matrix(0.1);
        assert_eq!(cm.node_count(), 3);
        assert_eq!(cm.activities(), bank.activities());
    }

    #[test]
    fn training_is_deterministic() {
        let a = ModelBank::train(&small_spec(), 11).unwrap();
        let b = ModelBank::train(&small_spec(), 11).unwrap();
        for loc in SensorLocation::ALL {
            assert_eq!(
                a.classifier(ModelVariant::Pruned, loc).mlp(),
                b.classifier(ModelVariant::Pruned, loc).mlp()
            );
        }
    }

    #[test]
    fn hidden_sizes_differ_per_location() {
        let sizes: Vec<&[usize]> = SensorLocation::ALL
            .iter()
            .map(|&l| ModelBank::hidden_for(l))
            .collect();
        assert_ne!(sizes[0], sizes[1]);
        assert_ne!(sizes[1], sizes[2]);
    }
}
