//! The scheduling policies: naive, plain ER-r, AAS, AASR and Origin.

use crate::ensemble::EnsembleKind;
use crate::error::CoreError;
use crate::rank::RankTable;
use crate::schedule::{SlotKind, Slots};
use origin_telemetry::{NoopObserver, SimEvent, SimObserver};
use origin_types::{ActivityClass, NodeId};

/// Which policy drives the deployment (Section III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Every sensor attempts every window — the Fig. 1a motivation
    /// experiment.
    NaiveAllOn,
    /// Plain (extended) round-robin with a fixed node rotation: RR3,
    /// RR6, RR9, RR12 (Fig. 3). Output is the latest single result.
    RoundRobin {
        /// ER-r cycle length (multiple of the node count).
        cycle: u8,
    },
    /// Activity-aware scheduling: the rank table picks the attempter for
    /// the anticipated activity at the ER-r cadence. Output is the latest
    /// single result.
    Aas {
        /// ER-r cycle length.
        cycle: u8,
    },
    /// AAS + host-side recall with naive majority voting.
    Aasr {
        /// ER-r cycle length.
        cycle: u8,
    },
    /// The full policy: AASR + adaptive confidence-weighted voting.
    Origin {
        /// ER-r cycle length.
        cycle: u8,
    },
}

impl PolicyKind {
    /// The ER-r cycle, `None` for the naive policy.
    #[must_use]
    pub fn cycle(&self) -> Option<u8> {
        match *self {
            PolicyKind::NaiveAllOn => None,
            PolicyKind::RoundRobin { cycle }
            | PolicyKind::Aas { cycle }
            | PolicyKind::Aasr { cycle }
            | PolicyKind::Origin { cycle } => Some(cycle),
        }
    }

    /// Whether the rank table selects the attempter.
    #[must_use]
    pub fn is_activity_aware(&self) -> bool {
        matches!(
            self,
            PolicyKind::Aas { .. } | PolicyKind::Aasr { .. } | PolicyKind::Origin { .. }
        )
    }

    /// The host aggregation this policy runs.
    #[must_use]
    pub fn ensemble(&self) -> EnsembleKind {
        match self {
            PolicyKind::NaiveAllOn => EnsembleKind::Majority,
            PolicyKind::RoundRobin { .. } | PolicyKind::Aas { .. } => EnsembleKind::SingleLatest,
            PolicyKind::Aasr { .. } => EnsembleKind::Majority,
            PolicyKind::Origin { .. } => EnsembleKind::ConfidenceWeighted,
        }
    }

    /// Whether the host's confidence matrix adapts online.
    #[must_use]
    pub fn adapts_confidence(&self) -> bool {
        matches!(self, PolicyKind::Origin { .. })
    }

    /// Display label matching the paper's figure legends ("RR12 Origin").
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            PolicyKind::NaiveAllOn => "Naive".to_owned(),
            PolicyKind::RoundRobin { cycle } => format!("RR{cycle}"),
            PolicyKind::Aas { cycle } => format!("RR{cycle} AAS"),
            PolicyKind::Aasr { cycle } => format!("RR{cycle} AASR"),
            PolicyKind::Origin { cycle } => format!("RR{cycle} Origin"),
        }
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label())
    }
}

/// One window's scheduling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Nodes that attempt an inference this window.
    pub attempters: Vec<NodeId>,
    /// An AAS activation hand-off to deliver over the radio, if the
    /// attempter differs from the previous one (`from`, `to`).
    pub signal: Option<(NodeId, NodeId)>,
}

impl Plan {
    /// A window where everyone just harvests.
    #[must_use]
    pub fn idle() -> Self {
        Self {
            attempters: Vec::new(),
            signal: None,
        }
    }
}

/// Runtime scheduling state for one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyState {
    kind: PolicyKind,
    slots: Option<Slots>,
    rank: RankTable,
    nodes: usize,
    cold_start_next: usize,
    prev_attempter: Option<NodeId>,
    // Window index of each node's last attempt; AAS respects the ER-r
    // spacing *per sensor* ("we induce delays between sending the external
    // signal and starting the inference on the same sensor",
    // Section III-B), so a node runs at most once per cycle.
    last_attempt: Vec<Option<u64>>,
}

impl PolicyState {
    /// Builds the runtime state for `kind` over `nodes` sensors, using
    /// `rank` for activity-aware selection.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadCycle`] for invalid ER-r cycles.
    pub fn new(kind: PolicyKind, rank: RankTable, nodes: usize) -> Result<Self, CoreError> {
        let slots = match kind.cycle() {
            Some(cycle) => Some(Slots::new(cycle, nodes)?),
            None => None,
        };
        Ok(Self {
            kind,
            slots,
            rank,
            nodes,
            cold_start_next: 0,
            prev_attempter: None,
            last_attempt: vec![None; nodes],
        })
    }

    /// The policy kind.
    #[must_use]
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The slot structure, `None` for the naive policy.
    #[must_use]
    pub fn slots(&self) -> Option<&Slots> {
        self.slots.as_ref()
    }

    /// The rank table in use.
    #[must_use]
    pub fn rank(&self) -> &RankTable {
        &self.rank
    }

    /// Decides who attempts at window index `window`.
    ///
    /// * `anticipated` — the host's current classification (the activity
    ///   the scheduler expects to continue);
    /// * `headroom[n]` — node `n`'s stored energy divided by its full
    ///   attempt cost (≥ 1.0 means affordable), used for the AAS next-best
    ///   fallback ("the current sensor chooses the next best sensor for
    ///   the job and signals it").
    ///
    /// # Panics
    ///
    /// Panics when `headroom.len() != nodes`.
    pub fn plan(
        &mut self,
        window: u64,
        anticipated: Option<ActivityClass>,
        headroom: &[f64],
    ) -> Plan {
        self.plan_observed(window, anticipated, headroom, &mut NoopObserver)
    }

    /// [`PolicyState::plan`] with telemetry: emits one
    /// [`SimEvent::SlotScheduled`] per window, no-op slots included. The
    /// observer is a pure consumer — the decision is identical to the
    /// unobserved path.
    ///
    /// # Panics
    ///
    /// Panics when `headroom.len() != nodes`.
    pub fn plan_observed<O: SimObserver>(
        &mut self,
        window: u64,
        anticipated: Option<ActivityClass>,
        headroom: &[f64],
        observer: &mut O,
    ) -> Plan {
        assert_eq!(headroom.len(), self.nodes, "one headroom per node");
        let (plan, idle) = self.decide(window, anticipated, headroom);
        observer.on_event(&SimEvent::SlotScheduled {
            window,
            attempters: plan.attempters.len() as u32,
            idle,
        });
        plan
    }

    /// The scheduling decision and whether the slot was an ER-r no-op.
    fn decide(
        &mut self,
        window: u64,
        anticipated: Option<ActivityClass>,
        headroom: &[f64],
    ) -> (Plan, bool) {
        let Some(slots) = self.slots else {
            // Naive: everyone, every window, no signalling.
            let plan = Plan {
                attempters: (0..self.nodes).map(|i| NodeId::new(i as u32)).collect(),
                signal: None,
            };
            return (plan, false);
        };
        let SlotKind::Sensor { ordinal } = slots.slot_at(window) else {
            return (Plan::idle(), true);
        };

        let chosen = if self.kind.is_activity_aware() {
            self.choose_activity_aware(window, ordinal, anticipated, headroom)
        } else {
            NodeId::new((ordinal % self.nodes) as u32)
        };

        let signal = match self.prev_attempter {
            Some(prev) if self.kind.is_activity_aware() && prev != chosen => Some((prev, chosen)),
            _ => None,
        };
        self.prev_attempter = Some(chosen);
        self.last_attempt[chosen.as_usize()] = Some(window);
        let plan = Plan {
            attempters: vec![chosen],
            signal,
        };
        (plan, false)
    }

    fn choose_activity_aware(
        &mut self,
        window: u64,
        ordinal: usize,
        anticipated: Option<ActivityClass>,
        headroom: &[f64],
    ) -> NodeId {
        let slots = self.slots.expect("AAS always has slots");
        // The ER-r spacing applied to the *same sensor* ("we induce delays
        // between sending the external signal and starting the inference
        // on the same sensor", Section III-B). How aggressively the best
        // sensor may repeat depends on what the host consumes:
        //
        // * plain AAS reports the latest single result, so concentrating
        //   inferences on the best sensor maximizes output quality — the
        //   same sensor may take every other sensor slot;
        // * AASR/Origin ensemble over *recalled* votes, which are only
        //   useful while fresh — every node takes exactly one sensor slot
        //   per cycle so no recall ages beyond one rotation.
        let stride = u64::from(slots.cycle() / slots.nodes() as u8);
        let cooldown = match self.kind {
            PolicyKind::Aas { .. } => stride * 2,
            _ => u64::from(slots.cycle()),
        };
        let off_cooldown = |n: &NodeId| {
            self.last_attempt[n.as_usize()]
                .is_none_or(|last| window.saturating_sub(last) >= cooldown)
        };
        let Some(activity) = anticipated else {
            // Cold start: plain rotation until the first classification.
            let node = NodeId::new(((ordinal + self.cold_start_next) % self.nodes) as u32);
            self.cold_start_next = (self.cold_start_next + 1) % self.nodes;
            return node;
        };
        let Some(order) = self.rank.ordered(activity) else {
            return NodeId::new((ordinal % self.nodes) as u32);
        };
        // Best-ranked sensor off ER-r cooldown that can afford the
        // attempt. If none can, the slot goes to the off-cooldown node
        // with the most stored energy — the one closest to completing —
        // instead of wasting the slot on the (possibly empty) best-ranked
        // node. With `nodes` sensor slots per cycle and a once-per-cycle
        // cooldown, some node is always eligible.
        order
            .iter()
            .copied()
            .find(|n| off_cooldown(n) && headroom.get(n.as_usize()).copied().unwrap_or(0.0) >= 1.0)
            .or_else(|| {
                order.iter().copied().filter(off_cooldown).max_by(|a, b| {
                    headroom[a.as_usize()]
                        .partial_cmp(&headroom[b.as_usize()])
                        .expect("headroom is finite")
                })
            })
            .unwrap_or(order[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_nn::ConfusionMatrix;
    use origin_types::ActivitySet;

    fn rank_preferring(node: u32) -> RankTable {
        // Build matrices where `node` is best at everything.
        let set = ActivitySet::mhealth();
        let matrices: Vec<ConfusionMatrix> = (0..3)
            .map(|i| {
                let mut m = ConfusionMatrix::new(6);
                let correct = if i == node as usize { 9 } else { 4 };
                for c in 0..6 {
                    for _ in 0..correct {
                        m.record(c, c);
                    }
                    for _ in 0..(10 - correct) {
                        m.record(c, (c + 1) % 6);
                    }
                }
                m
            })
            .collect();
        RankTable::from_validation(set, &matrices)
    }

    #[test]
    fn naive_schedules_everyone() {
        let mut p = PolicyState::new(PolicyKind::NaiveAllOn, rank_preferring(0), 3).unwrap();
        let plan = p.plan(0, None, &[2.0, 2.0, 2.0]);
        assert_eq!(plan.attempters.len(), 3);
        assert!(plan.signal.is_none());
        assert!(p.slots().is_none());
    }

    #[test]
    fn round_robin_rotates_fixed_order() {
        let mut p =
            PolicyState::new(PolicyKind::RoundRobin { cycle: 6 }, rank_preferring(0), 3).unwrap();
        let afford = [2.0, 2.0, 2.0];
        assert_eq!(p.plan(0, None, &afford).attempters, vec![NodeId::new(0)]);
        assert!(p.plan(1, None, &afford).attempters.is_empty()); // no-op
        assert_eq!(p.plan(2, None, &afford).attempters, vec![NodeId::new(1)]);
        assert_eq!(p.plan(4, None, &afford).attempters, vec![NodeId::new(2)]);
        assert_eq!(p.plan(6, None, &afford).attempters, vec![NodeId::new(0)]);
    }

    #[test]
    fn aas_picks_ranked_best_when_affordable() {
        let mut p = PolicyState::new(PolicyKind::Aas { cycle: 3 }, rank_preferring(2), 3).unwrap();
        let plan = p.plan(0, Some(ActivityClass::Walking), &[2.0, 2.0, 2.0]);
        assert_eq!(plan.attempters, vec![NodeId::new(2)]);
    }

    #[test]
    fn aas_falls_back_to_next_best() {
        let mut p = PolicyState::new(PolicyKind::Aas { cycle: 3 }, rank_preferring(2), 3).unwrap();
        // Node 2 (best) cannot afford; ties at 4/10 for 0 and 1 break to 0.
        let plan = p.plan(0, Some(ActivityClass::Walking), &[2.0, 2.0, 0.4]);
        assert_eq!(plan.attempters, vec![NodeId::new(0)]);
    }

    #[test]
    fn aas_attempts_best_even_when_no_one_affords() {
        let mut p = PolicyState::new(PolicyKind::Aas { cycle: 3 }, rank_preferring(1), 3).unwrap();
        let plan = p.plan(0, Some(ActivityClass::Running), &[0.1, 0.9, 0.2]);
        assert_eq!(plan.attempters, vec![NodeId::new(1)]);
    }

    #[test]
    fn aas_signals_on_handoff() {
        let mut p = PolicyState::new(PolicyKind::Aas { cycle: 3 }, rank_preferring(2), 3).unwrap();
        let first = p.plan(0, Some(ActivityClass::Walking), &[2.0, 2.0, 2.0]);
        assert!(first.signal.is_none(), "no previous attempter yet");
        // Best node 2 is now on ER-r cooldown: hand-off to node 0,
        // signalled from node 2.
        let second = p.plan(1, Some(ActivityClass::Walking), &[2.0, 2.0, 0.4]);
        assert_eq!(second.signal, Some((NodeId::new(2), NodeId::new(0))));
        // Node 2 is off cooldown again (AAS allows every other slot) but
        // still broke; node 0 is affordable but cooling down; nobody
        // affordable is eligible, so the slot goes to the off-cooldown
        // node with the most stored energy (node 1 at 0.5 vs node 2 at
        // 0.4) — the one closest to completing.
        let third = p.plan(2, Some(ActivityClass::Walking), &[2.0, 0.5, 0.4]);
        assert_eq!(third.attempters, vec![NodeId::new(1)]);
        assert_eq!(third.signal, Some((NodeId::new(0), NodeId::new(1))));
    }

    #[test]
    fn aas_cooldown_rotates_all_sensors_within_a_cycle() {
        // With abundant energy the best sensor must NOT monopolize the
        // slots — each node runs once per cycle, keeping recalls fresh.
        let mut p = PolicyState::new(PolicyKind::Aasr { cycle: 3 }, rank_preferring(2), 3).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for w in 0..3 {
            let plan = p.plan(w, Some(ActivityClass::Walking), &[2.0, 2.0, 2.0]);
            seen.insert(plan.attempters[0]);
        }
        assert_eq!(seen.len(), 3, "all three sensors run each cycle");
    }

    #[test]
    fn cold_start_rotates() {
        let mut p =
            PolicyState::new(PolicyKind::Origin { cycle: 3 }, rank_preferring(0), 3).unwrap();
        let a = p.plan(0, None, &[2.0; 3]).attempters[0];
        let b = p.plan(1, None, &[2.0; 3]).attempters[0];
        assert_ne!(a, b, "cold start must not hammer one node");
    }

    #[test]
    fn kind_properties() {
        assert_eq!(PolicyKind::NaiveAllOn.cycle(), None);
        assert_eq!(PolicyKind::Origin { cycle: 12 }.cycle(), Some(12));
        assert!(!PolicyKind::RoundRobin { cycle: 3 }.is_activity_aware());
        assert!(PolicyKind::Aasr { cycle: 6 }.is_activity_aware());
        assert_eq!(
            PolicyKind::Aas { cycle: 9 }.ensemble(),
            EnsembleKind::SingleLatest
        );
        assert_eq!(
            PolicyKind::Origin { cycle: 12 }.ensemble(),
            EnsembleKind::ConfidenceWeighted
        );
        assert!(PolicyKind::Origin { cycle: 12 }.adapts_confidence());
        assert!(!PolicyKind::Aasr { cycle: 12 }.adapts_confidence());
        assert_eq!(PolicyKind::Origin { cycle: 12 }.label(), "RR12 Origin");
        assert_eq!(PolicyKind::NaiveAllOn.to_string(), "Naive");
    }

    #[test]
    fn plan_observed_reports_noop_slots() {
        use origin_telemetry::RecordingObserver;
        let mut p =
            PolicyState::new(PolicyKind::RoundRobin { cycle: 6 }, rank_preferring(0), 3).unwrap();
        let mut rec = RecordingObserver::new();
        let afford = [2.0, 2.0, 2.0];
        // Window 0 is a sensor slot, window 1 an ER-6 no-op.
        let _ = p.plan_observed(0, None, &afford, &mut rec);
        let _ = p.plan_observed(1, None, &afford, &mut rec);
        assert_eq!(
            rec.events(),
            &[
                SimEvent::SlotScheduled {
                    window: 0,
                    attempters: 1,
                    idle: false,
                },
                SimEvent::SlotScheduled {
                    window: 1,
                    attempters: 0,
                    idle: true,
                },
            ]
        );
    }

    #[test]
    fn bad_cycle_is_rejected() {
        assert!(matches!(
            PolicyState::new(PolicyKind::Aas { cycle: 7 }, rank_preferring(0), 3),
            Err(CoreError::BadCycle { .. })
        ));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use origin_nn::ConfusionMatrix;
    use origin_types::{ActivitySet, NodeId};

    /// The paper's footnote: "this can also be extended to larger numbers
    /// of sensors and modalities". The policy layer supports any node
    /// count whose ER-r cycle is a multiple of it.
    #[test]
    fn policies_generalize_to_four_nodes() {
        let set = ActivitySet::mhealth();
        let matrices: Vec<ConfusionMatrix> = (0..4)
            .map(|node| {
                let mut m = ConfusionMatrix::new(6);
                for c in 0..6 {
                    let correct = 4 + (node + c) % 6;
                    for _ in 0..correct {
                        m.record(c, c);
                    }
                    for _ in 0..(10 - correct) {
                        m.record(c, (c + 1) % 6);
                    }
                }
                m
            })
            .collect();
        let rank = RankTable::from_validation(set, &matrices);
        assert_eq!(rank.node_count(), 4);

        let mut p = PolicyState::new(PolicyKind::Origin { cycle: 8 }, rank, 4).unwrap();
        let mut scheduled = std::collections::BTreeSet::new();
        for w in 0..8 {
            let plan = p.plan(w, Some(ActivityClass::Walking), &[2.0; 4]);
            for a in plan.attempters {
                assert!(a.as_usize() < 4);
                scheduled.insert(a);
            }
        }
        // Every one of the four nodes ran within one cycle (freshness).
        assert_eq!(scheduled.len(), 4);
        // And the fifth node id never appears.
        assert!(!scheduled.contains(&NodeId::new(4)));
    }

    #[test]
    fn four_node_cycle_must_divide() {
        let set = ActivitySet::mhealth();
        let matrices: Vec<ConfusionMatrix> = (0..4)
            .map(|_| {
                let mut m = ConfusionMatrix::new(6);
                for c in 0..6 {
                    m.record(c, c);
                }
                m
            })
            .collect();
        let rank = RankTable::from_validation(set, &matrices);
        assert!(matches!(
            PolicyState::new(PolicyKind::Aas { cycle: 9 }, rank, 4),
            Err(CoreError::BadCycle { cycle: 9, nodes: 4 })
        ));
    }
}
