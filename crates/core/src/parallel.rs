//! Deterministic fan-out primitive shared by model training and the
//! sweep engine.
//!
//! Lives in `origin-core` (rather than the bench crate that first grew
//! it) so that [`ModelBank`](crate::ModelBank) can train its per-location
//! classifiers in parallel with the same machinery the sweep binaries
//! use; `origin_bench::sweep` re-exports it unchanged.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count used when the caller passes `threads = 0`: what the
/// OS reports as available parallelism, or 1 when that is unknown.
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item, possibly in parallel, returning results in
/// item order.
///
/// The deterministic primitive under the sweep engine: workers pull item
/// indices from an atomic counter and write each result into that item's
/// pre-sized slot, so the output `Vec` is independent of `threads`, work
/// interleaving, and which worker ran which item. `threads = 0` uses
/// [`available_threads`]; `threads = 1` (or a single item) runs inline
/// with no thread machinery at all.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = if threads == 0 {
        available_threads()
    } else {
        threads
    }
    .min(items.len().max(1));
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("result slot lock poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock poisoned")
                .expect("every slot filled after join")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_is_order_preserving_and_thread_invariant() {
        let items: Vec<u64> = (0..97).collect();
        let square = |i: usize, &x: &u64| (i as u64, x * x);
        let serial = parallel_map(1, &items, square);
        let wide = parallel_map(8, &items, square);
        assert_eq!(serial, wide);
        for (i, (idx, sq)) in serial.iter().enumerate() {
            assert_eq!(*idx as usize, i);
            assert_eq!(*sq, items[i] * items[i]);
        }
        assert_eq!(parallel_map(0, &items, square), serial);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out = parallel_map(4, &[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }
}
