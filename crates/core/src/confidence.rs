//! The adaptive confidence matrix.
//!
//! "We build a lookup table by averaging the variance of output vectors of
//! multiple test cases. This table, which we call the confidence matrix,
//! gives us the confidence of each sensor for each class, and can be used
//! as a weight for majority voting. ... after each successful
//! classification, the sensors would send the confidence score ... [which]
//! would further update the weight matrix of the host device using a
//! moving average method" (Section III-C).

use origin_nn::{Scalar, SensorClassifier};
use origin_types::{sum_ordered, ActivityClass, ActivitySet, NodeId};

/// Per (sensor × class) confidence weights with exponential moving-average
/// adaptation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceMatrix {
    activities: ActivitySet,
    // weights[node][dense_class]
    weights: Vec<Vec<f64>>,
    alpha: f64,
    updates: u64,
}

impl ConfidenceMatrix {
    /// Default moving-average rate. Fast enough that the matrix reaches
    /// steady state well within 100 Fig.-6 iterations while still
    /// averaging over tens of reports per (sensor, class) cell.
    pub const DEFAULT_ALPHA: f64 = 0.05;

    /// A matrix with uniform weights (used before any calibration data is
    /// available).
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero or `alpha` ∉ `(0, 1]`.
    #[must_use]
    pub fn uniform(activities: ActivitySet, nodes: usize, alpha: f64) -> Self {
        assert!(nodes > 0, "confidence matrix needs at least one node");
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "moving-average rate must be in (0, 1], got {alpha}"
        );
        let classes = activities.len();
        Self {
            activities,
            weights: vec![vec![1.0 / classes as f64; classes]; nodes],
            alpha,
            updates: 0,
        }
    }

    /// The paper's initialization: for each sensor, run its classifier
    /// over held-out samples and average the softmax variance per
    /// *predicted* class.
    ///
    /// `validation[node]` holds that node's raw `(features, dense_label)`
    /// pairs. The classifiers may run at any kernel precision — the
    /// confidence weights they produce are always `f64`.
    ///
    /// # Panics
    ///
    /// Panics on empty inputs, classifier/class-count mismatch, or a
    /// feature-width mismatch inside classification.
    #[must_use]
    pub fn from_validation<S: Scalar>(
        classifiers: &[SensorClassifier<S>],
        validation: &[Vec<(Vec<f64>, usize)>],
        alpha: f64,
    ) -> Self {
        assert!(!classifiers.is_empty(), "need at least one classifier");
        assert_eq!(
            classifiers.len(),
            validation.len(),
            "one validation set per classifier"
        );
        let activities = classifiers[0].activities().clone();
        let classes = activities.len();
        let mut matrix = Self::uniform(activities.clone(), classifiers.len(), alpha);
        let mut ws = origin_nn::Workspace::new();
        for (node, (clf, data)) in classifiers.iter().zip(validation).enumerate() {
            assert_eq!(
                clf.activities(),
                &activities,
                "classifiers must share one activity set"
            );
            let mut sums = vec![0.0; classes];
            let mut counts = vec![0u64; classes];
            for (x, _) in data {
                let c = clf
                    .classify_with(&mut ws, x)
                    .expect("validation features match the classifier");
                sums[c.dense_label] += c.confidence;
                counts[c.dense_label] += 1;
            }
            let fallback = {
                let total = sum_ordered(sums.iter().copied());
                let n: u64 = counts.iter().sum();
                if n == 0 {
                    1.0 / classes as f64
                } else {
                    total / n as f64
                }
            };
            for dense in 0..classes {
                matrix.weights[node][dense] = if counts[dense] == 0 {
                    fallback
                } else {
                    sums[dense] / counts[dense] as f64
                };
            }
        }
        matrix
    }

    /// The activity set the columns index.
    #[must_use]
    pub fn activities(&self) -> &ActivitySet {
        &self.activities
    }

    /// Number of sensor rows.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.weights.len()
    }

    /// Moving-average rate.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Updates applied so far.
    #[must_use]
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// The weight of `node` voting for `activity`, or `None` when the
    /// activity is outside the set.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn weight(&self, node: NodeId, activity: ActivityClass) -> Option<f64> {
        let dense = self.activities.dense_index(activity)?;
        Some(self.weights[node.as_usize()][dense])
    }

    /// Applies one moving-average update from a successful classification:
    /// `w ← (1 − α) w + α · observed`.
    ///
    /// Out-of-set activities are ignored (a sensor cannot report one).
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range or `observed` is not finite and
    /// non-negative.
    pub fn update(&mut self, node: NodeId, activity: ActivityClass, observed: f64) {
        assert!(
            observed.is_finite() && observed >= 0.0,
            "confidence must be finite and non-negative"
        );
        let Some(dense) = self.activities.dense_index(activity) else {
            return;
        };
        let w = &mut self.weights[node.as_usize()][dense];
        *w = (1.0 - self.alpha) * *w + self.alpha * observed;
        self.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_nn::{SensorClassifier, Trainer};

    fn set2() -> ActivitySet {
        ActivitySet::new([ActivityClass::Walking, ActivityClass::Running]).unwrap()
    }

    #[test]
    fn uniform_starts_flat() {
        let m = ConfidenceMatrix::uniform(set2(), 3, 0.1);
        assert_eq!(m.node_count(), 3);
        assert_eq!(m.weight(NodeId::new(0), ActivityClass::Walking), Some(0.5));
        assert_eq!(m.weight(NodeId::new(2), ActivityClass::Running), Some(0.5));
        assert_eq!(m.weight(NodeId::new(0), ActivityClass::Cycling), None);
        assert_eq!(m.update_count(), 0);
    }

    #[test]
    fn update_moves_weight_toward_observation() {
        let mut m = ConfidenceMatrix::uniform(set2(), 1, 0.5);
        m.update(NodeId::new(0), ActivityClass::Walking, 0.9);
        let w = m.weight(NodeId::new(0), ActivityClass::Walking).unwrap();
        assert!((w - 0.7).abs() < 1e-12, "w = {w}");
        // Repeated updates converge to the observation.
        for _ in 0..50 {
            m.update(NodeId::new(0), ActivityClass::Walking, 0.9);
        }
        let w = m.weight(NodeId::new(0), ActivityClass::Walking).unwrap();
        assert!((w - 0.9).abs() < 1e-6);
        assert_eq!(m.update_count(), 51);
    }

    #[test]
    fn out_of_set_updates_are_ignored() {
        let mut m = ConfidenceMatrix::uniform(set2(), 1, 0.5);
        m.update(NodeId::new(0), ActivityClass::Cycling, 0.9);
        assert_eq!(m.update_count(), 0);
    }

    #[test]
    fn from_validation_reflects_classifier_confidence() {
        // A tiny, nearly deterministic classifier: one feature separates
        // the classes completely.
        let data: Vec<(Vec<f64>, usize)> = (0..40)
            .map(|i| {
                let label = i % 2;
                (vec![label as f64 * 4.0 - 2.0 + (i as f64 * 0.01)], label)
            })
            .collect();
        let clf = SensorClassifier::<f64>::train(
            &[6],
            &data,
            set2(),
            &Trainer::new().with_epochs(120),
            3,
        )
        .unwrap();
        let m = ConfidenceMatrix::from_validation(
            std::slice::from_ref(&clf),
            std::slice::from_ref(&data),
            0.1,
        );
        // A well-separated classifier is confident: weights well above the
        // uniform floor of variance 0 and near the one-hot maximum (0.25
        // for two classes).
        let walk = m.weight(NodeId::new(0), ActivityClass::Walking).unwrap();
        let run = m.weight(NodeId::new(0), ActivityClass::Running).unwrap();
        assert!(walk > 0.15, "walk weight {walk}");
        assert!(run > 0.15, "run weight {run}");
    }

    #[test]
    fn from_validation_handles_never_predicted_class() {
        // Classifier trained on one class only will rarely predict the
        // other; the fallback must fill that cell.
        let data: Vec<(Vec<f64>, usize)> = (0..20).map(|i| (vec![i as f64], 0)).collect();
        let clf =
            SensorClassifier::<f64>::train(&[4], &data, set2(), &Trainer::new().with_epochs(30), 1)
                .unwrap();
        let m = ConfidenceMatrix::from_validation(
            std::slice::from_ref(&clf),
            std::slice::from_ref(&data),
            0.1,
        );
        for a in [ActivityClass::Walking, ActivityClass::Running] {
            let w = m.weight(NodeId::new(0), a).unwrap();
            assert!(w.is_finite() && w >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "moving-average rate")]
    fn bad_alpha_panics() {
        let _ = ConfidenceMatrix::uniform(set2(), 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn bad_observation_panics() {
        let mut m = ConfidenceMatrix::uniform(set2(), 1, 0.5);
        m.update(NodeId::new(0), ActivityClass::Walking, f64::NAN);
    }
}
