//! Extended round-robin slot schedules (Fig. 3).
//!
//! "Each policy is named after the number of nodes the cycle has, i.e.
//! RR3 has 3 nodes with no no-ops and RR6 has 3 nodes with 3 no-ops."
//! Sensor slots are spread evenly through the cycle so each node gets a
//! maximal harvesting gap between its turns:
//!
//! ```text
//! RR3:  [S0] [S1] [S2]
//! RR6:  [S0] [--] [S1] [--] [S2] [--]
//! RR9:  [S0] [--] [--] [S1] [--] [--] [S2] [--] [--]
//! RR12: [S0] [--] [--] [--] [S1] [--] [--] [--] [S2] [--] [--] [--]
//! ```

use crate::error::CoreError;

/// What happens in one slot of the ER-r cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// Sensor slot: the `ordinal`-th inference turn of the cycle
    /// (`0..nodes`). Which physical node takes it is the policy's call —
    /// fixed rotation for plain ER-r, rank lookup for AAS.
    Sensor {
        /// Turn index within the cycle, `0..nodes`.
        ordinal: usize,
    },
    /// No-op slot: every node harvests.
    NoOp,
}

/// An ER-r cycle: `nodes` sensor slots spread evenly over `cycle` slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slots {
    cycle: u8,
    nodes: u8,
}

impl Slots {
    /// A cycle of `cycle` slots over `nodes` sensor nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadCycle`] unless `cycle` is a positive
    /// multiple of `nodes`.
    pub fn new(cycle: u8, nodes: usize) -> Result<Self, CoreError> {
        let n = u8::try_from(nodes).map_err(|_| CoreError::BadCycle { cycle, nodes })?;
        if n == 0 || cycle == 0 || !cycle.is_multiple_of(n) {
            return Err(CoreError::BadCycle { cycle, nodes });
        }
        Ok(Self { cycle, nodes: n })
    }

    /// The paper's RR3/RR6/RR9/RR12 over three nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `cycle` ∈ {3, 6, 9, 12, ...} (multiples of 3).
    #[must_use]
    pub fn paper(cycle: u8) -> Self {
        Self::new(cycle, 3).expect("paper cycles are multiples of 3")
    }

    /// Cycle length in slots.
    #[must_use]
    pub fn cycle(&self) -> u8 {
        self.cycle
    }

    /// Number of sensor slots per cycle (= node count).
    #[must_use]
    pub fn nodes(&self) -> usize {
        usize::from(self.nodes)
    }

    /// No-op slots per cycle.
    #[must_use]
    pub fn noops(&self) -> usize {
        usize::from(self.cycle - self.nodes)
    }

    /// Gap between consecutive sensor slots (`cycle / nodes`).
    #[must_use]
    pub fn stride(&self) -> usize {
        usize::from(self.cycle / self.nodes)
    }

    /// The kind of slot at global window index `window`.
    #[must_use]
    pub fn slot_at(&self, window: u64) -> SlotKind {
        let pos = (window % u64::from(self.cycle)) as usize;
        let stride = self.stride();
        if pos.is_multiple_of(stride) {
            SlotKind::Sensor {
                ordinal: pos / stride,
            }
        } else {
            SlotKind::NoOp
        }
    }

    /// The full cycle layout, for display and tests.
    #[must_use]
    pub fn layout(&self) -> Vec<SlotKind> {
        (0..u64::from(self.cycle))
            .map(|w| self.slot_at(w))
            .collect()
    }

    /// Fraction of slots that attempt an inference.
    #[must_use]
    pub fn duty_fraction(&self) -> f64 {
        f64::from(self.nodes) / f64::from(self.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr3_has_no_noops() {
        let s = Slots::paper(3);
        assert_eq!(s.noops(), 0);
        assert_eq!(s.stride(), 1);
        assert_eq!(
            s.layout(),
            vec![
                SlotKind::Sensor { ordinal: 0 },
                SlotKind::Sensor { ordinal: 1 },
                SlotKind::Sensor { ordinal: 2 },
            ]
        );
    }

    #[test]
    fn rr6_interleaves_noops() {
        let s = Slots::paper(6);
        assert_eq!(s.noops(), 3);
        assert_eq!(
            s.layout(),
            vec![
                SlotKind::Sensor { ordinal: 0 },
                SlotKind::NoOp,
                SlotKind::Sensor { ordinal: 1 },
                SlotKind::NoOp,
                SlotKind::Sensor { ordinal: 2 },
                SlotKind::NoOp,
            ]
        );
    }

    #[test]
    fn rr12_has_three_noops_per_sensor() {
        let s = Slots::paper(12);
        assert_eq!(s.noops(), 9);
        assert_eq!(s.stride(), 4);
        let layout = s.layout();
        assert_eq!(layout[0], SlotKind::Sensor { ordinal: 0 });
        assert_eq!(layout[4], SlotKind::Sensor { ordinal: 1 });
        assert_eq!(layout[8], SlotKind::Sensor { ordinal: 2 });
        assert_eq!(layout.iter().filter(|&&k| k == SlotKind::NoOp).count(), 9);
    }

    #[test]
    fn slot_at_wraps_across_cycles() {
        let s = Slots::paper(6);
        assert_eq!(s.slot_at(0), s.slot_at(6));
        assert_eq!(s.slot_at(2), SlotKind::Sensor { ordinal: 1 });
        assert_eq!(s.slot_at(8), SlotKind::Sensor { ordinal: 1 });
        assert_eq!(s.slot_at(7), SlotKind::NoOp);
    }

    #[test]
    fn duty_fraction_shrinks_with_cycle() {
        assert!(Slots::paper(3).duty_fraction() > Slots::paper(12).duty_fraction());
        assert!((Slots::paper(12).duty_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn invalid_cycles_are_rejected() {
        assert!(matches!(
            Slots::new(7, 3),
            Err(CoreError::BadCycle { cycle: 7, nodes: 3 })
        ));
        assert!(Slots::new(0, 3).is_err());
        assert!(Slots::new(4, 0).is_err());
        assert!(Slots::new(8, 4).is_ok());
    }

    #[test]
    #[should_panic(expected = "multiples of 3")]
    fn paper_rejects_non_multiple() {
        let _ = Slots::paper(5);
    }
}
