//! Error type for policy construction and experiment drivers.

use core::fmt;
use origin_nn::NnError;

/// Errors surfaced by the Origin policy layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying NN operation failed.
    Nn(NnError),
    /// An ER-r cycle length that is not a positive multiple of the node
    /// count was requested.
    BadCycle {
        /// The requested cycle length.
        cycle: u8,
        /// The deployment's node count.
        nodes: usize,
    },
    /// A deployment/model pair disagrees on the number of nodes.
    NodeCountMismatch {
        /// Nodes in the deployment.
        deployment: usize,
        /// Classifiers in the model bank.
        models: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "classifier error: {e}"),
            CoreError::BadCycle { cycle, nodes } => write!(
                f,
                "ER-r cycle {cycle} is not a positive multiple of the {nodes} sensor nodes"
            ),
            CoreError::NodeCountMismatch { deployment, models } => write!(
                f,
                "deployment has {deployment} nodes but the model bank has {models} classifiers"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::from(NnError::EmptyTrainingSet);
        assert!(e.to_string().contains("classifier error"));
        assert!(e.source().is_some());
        let e = CoreError::BadCycle { cycle: 7, nodes: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.source().is_none());
        let e = CoreError::NodeCountMismatch {
            deployment: 3,
            models: 2,
        };
        assert!(e.to_string().contains("model bank"));
    }
}
