//! Host-side recall of each sensor's most recent classification.
//!
//! "By memorizing or recalling the most recent classification result, we
//! can get the inference result of a sensor even without activating it.
//! ... we build the recall strategy into the host device" (Section III-B).

use origin_types::{ActivityClass, NodeId, SimTime};

/// One remembered classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecallEntry {
    /// The classified activity.
    pub activity: ActivityClass,
    /// The softmax-variance confidence the sensor reported.
    pub confidence: f64,
    /// When the report arrived at the host.
    pub reported_at: SimTime,
}

/// Per-node storage of the latest classification.
#[derive(Debug, Clone, PartialEq)]
pub struct RecallStore {
    entries: Vec<Option<RecallEntry>>,
}

impl RecallStore {
    /// An empty store for `nodes` sensors.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "recall store needs at least one node");
        Self {
            entries: vec![None; nodes],
        }
    }

    /// Number of tracked nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.entries.len()
    }

    /// Records a fresh classification from `node`, replacing any previous
    /// entry.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn record(&mut self, node: NodeId, entry: RecallEntry) {
        let slot = self
            .entries
            .get_mut(node.as_usize())
            .expect("node is tracked by the store");
        *slot = Some(entry);
    }

    /// The remembered entry for `node`, if it has ever reported.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn recall(&self, node: NodeId) -> Option<&RecallEntry> {
        self.entries
            .get(node.as_usize())
            .expect("node is tracked by the store")
            .as_ref()
    }

    /// Iterates `(node, entry)` over nodes that have reported at least
    /// once — the votes available to the ensemble.
    pub fn votes(&self) -> impl Iterator<Item = (NodeId, &RecallEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (NodeId::new(i as u32), e)))
    }

    /// The most recent entry across all nodes (the single-result output
    /// plain RR / AAS policies report).
    #[must_use]
    pub fn most_recent(&self) -> Option<(NodeId, &RecallEntry)> {
        self.votes().max_by_key(|(_, e)| e.reported_at)
    }

    /// Age of the oldest vote participating in the ensemble at `now`, or
    /// `None` when no node has reported. Diagnostic for recall staleness.
    #[must_use]
    pub fn oldest_vote_age(&self, now: SimTime) -> Option<origin_types::SimDuration> {
        self.votes()
            .map(|(_, e)| now.saturating_since(e.reported_at))
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(activity: ActivityClass, at_ms: u64) -> RecallEntry {
        RecallEntry {
            activity,
            confidence: 0.1,
            reported_at: SimTime::from_millis(at_ms),
        }
    }

    #[test]
    fn records_and_recalls() {
        let mut store = RecallStore::new(3);
        assert_eq!(store.node_count(), 3);
        assert!(store.recall(NodeId::new(0)).is_none());
        store.record(NodeId::new(0), entry(ActivityClass::Walking, 100));
        let got = store.recall(NodeId::new(0)).unwrap();
        assert_eq!(got.activity, ActivityClass::Walking);
        // Overwrite.
        store.record(NodeId::new(0), entry(ActivityClass::Running, 200));
        assert_eq!(
            store.recall(NodeId::new(0)).unwrap().activity,
            ActivityClass::Running
        );
    }

    #[test]
    fn votes_skip_silent_nodes() {
        let mut store = RecallStore::new(3);
        store.record(NodeId::new(1), entry(ActivityClass::Cycling, 50));
        let votes: Vec<_> = store.votes().collect();
        assert_eq!(votes.len(), 1);
        assert_eq!(votes[0].0, NodeId::new(1));
    }

    #[test]
    fn most_recent_picks_latest() {
        let mut store = RecallStore::new(3);
        assert!(store.most_recent().is_none());
        store.record(NodeId::new(0), entry(ActivityClass::Walking, 100));
        store.record(NodeId::new(2), entry(ActivityClass::Jumping, 300));
        store.record(NodeId::new(1), entry(ActivityClass::Cycling, 200));
        let (node, e) = store.most_recent().unwrap();
        assert_eq!(node, NodeId::new(2));
        assert_eq!(e.activity, ActivityClass::Jumping);
    }

    #[test]
    fn oldest_vote_age_tracks_staleness() {
        let mut store = RecallStore::new(2);
        assert!(store.oldest_vote_age(SimTime::from_secs(1)).is_none());
        store.record(NodeId::new(0), entry(ActivityClass::Walking, 1_000));
        store.record(NodeId::new(1), entry(ActivityClass::Running, 4_000));
        let age = store.oldest_vote_age(SimTime::from_millis(5_000)).unwrap();
        assert_eq!(age.as_millis(), 4_000);
    }

    #[test]
    #[should_panic(expected = "tracked by the store")]
    fn out_of_range_node_panics() {
        let store = RecallStore::new(1);
        let _ = store.recall(NodeId::new(9));
    }
}
