//! The paper's two fully-powered baselines (Section IV-C).

use crate::deployment::Deployment;
use crate::error::CoreError;
use crate::models::{ModelBank, ModelVariant};
use crate::policy::PolicyKind;
use crate::sim::{SimConfig, SimReport, Simulator};
use origin_nn::Scalar;
use std::sync::Arc;

/// Which baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Baseline-1: original unpruned DNNs, fully powered, majority vote.
    Baseline1,
    /// Baseline-2: energy-aware-pruned DNNs (fit to the average harvested
    /// power budget), fully powered, majority vote.
    Baseline2,
}

impl BaselineKind {
    /// The classifier variant this baseline runs.
    #[must_use]
    pub fn variant(self) -> ModelVariant {
        match self {
            BaselineKind::Baseline1 => ModelVariant::Unpruned,
            BaselineKind::Baseline2 => ModelVariant::Pruned,
        }
    }

    /// Table label ("BL-1" / "BL-2").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BaselineKind::Baseline1 => "BL-1",
            BaselineKind::Baseline2 => "BL-2",
        }
    }
}

/// A baseline run's outcome (a relabelled [`SimReport`]).
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Which baseline ran.
    pub kind: BaselineKind,
    /// The underlying simulation report.
    pub report: SimReport,
}

/// A simulator over the baselines' fully-powered deployment, sharing
/// `models` instead of cloning them.
///
/// Sweeps that evaluate a baseline in many cells build this once and call
/// [`run_baseline_on`] per cell; [`run_baseline`] is the one-shot
/// convenience wrapper.
#[must_use]
pub fn fully_powered_simulator<S: Scalar>(models: Arc<ModelBank<S>>) -> Simulator<S> {
    let deployment = Deployment::builder().fully_powered().build();
    Simulator::from_shared(Arc::new(deployment), models)
}

/// Runs baseline `kind` on a prebuilt fully-powered simulator (see
/// [`fully_powered_simulator`]).
///
/// `template` supplies the horizon, seed, user, noise and dwell scale;
/// the policy and variant are overridden to the baseline's definition.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_baseline_on<S: Scalar>(
    sim: &Simulator<S>,
    kind: BaselineKind,
    template: &SimConfig,
) -> Result<BaselineReport, CoreError> {
    let config = SimConfig {
        policy: PolicyKind::NaiveAllOn,
        variant: kind.variant(),
        ..template.clone()
    };
    let report = sim.run(&config)?;
    Ok(BaselineReport { kind, report })
}

/// Runs a baseline: every sensor classifies every window on steady power
/// and the host majority-votes.
///
/// `template` supplies the horizon, seed, user, noise and dwell scale; the
/// policy and variant are overridden to the baseline's definition, and the
/// deployment is switched to a steady supply.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_baseline<S: Scalar>(
    kind: BaselineKind,
    models: &ModelBank<S>,
    template: &SimConfig,
) -> Result<BaselineReport, CoreError> {
    let sim = fully_powered_simulator(Arc::new(models.clone()));
    run_baseline_on(&sim, kind, template)
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_sensors::DatasetSpec;
    use origin_types::SimDuration;

    fn models() -> ModelBank {
        let spec = DatasetSpec::mhealth_like().with_windows(10, 6);
        ModelBank::<f64>::train(&spec, 33).unwrap()
    }

    fn template() -> SimConfig {
        SimConfig::new(PolicyKind::NaiveAllOn)
            .with_horizon(SimDuration::from_secs(300))
            .with_seed(9)
    }

    #[test]
    fn baselines_complete_everything() {
        let models = models();
        for kind in [BaselineKind::Baseline1, BaselineKind::Baseline2] {
            let b = run_baseline(kind, &models, &template()).unwrap();
            let (all, _, _) = b.report.completion_breakdown();
            assert!(all > 0.99, "{}: all = {all}", kind.label());
        }
    }

    #[test]
    fn baseline1_beats_baseline2_on_average() {
        let models = models();
        let b1 = run_baseline(BaselineKind::Baseline1, &models, &template()).unwrap();
        let b2 = run_baseline(BaselineKind::Baseline2, &models, &template()).unwrap();
        // The unpruned nets should not lose to their pruned selves by a
        // wide margin; typically they win.
        assert!(
            b1.report.accuracy() >= b2.report.accuracy() - 0.05,
            "BL-1 {} vs BL-2 {}",
            b1.report.accuracy(),
            b2.report.accuracy()
        );
    }

    #[test]
    fn kind_properties() {
        assert_eq!(BaselineKind::Baseline1.variant(), ModelVariant::Unpruned);
        assert_eq!(BaselineKind::Baseline2.variant(), ModelVariant::Pruned);
        assert_eq!(BaselineKind::Baseline1.label(), "BL-1");
        assert_eq!(BaselineKind::Baseline2.label(), "BL-2");
    }
}
