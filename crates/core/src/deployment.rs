//! Physical deployment description: harvesters, capacitors, costs, link.

use origin_energy::{Capacitor, EnergyCostTable, EnergyNode, Harvester, Nvp};
use origin_net::LinkModel;
use origin_trace::{ConstantPower, PowerSource, ScaledSource, TraceSource, WifiOfficeModel};
use origin_types::{Energy, Power, SensorLocation, SimDuration, SimTime};

/// The power source of one deployed node: either the shared (scaled)
/// harvest trace or a steady supply (the baselines' "fully powered
/// system").
#[derive(Debug, Clone, PartialEq)]
pub enum NodeSource {
    /// Location-scaled share of the deployment's harvest trace.
    Harvested(ScaledSource<TraceSource>),
    /// Steady power (baselines).
    Steady(ConstantPower),
    /// Harvest plus a small battery trickle — the Discussion section's
    /// "battery-powered or hybrid" deployment mode.
    Hybrid(ScaledSource<TraceSource>, ConstantPower),
}

impl PowerSource for NodeSource {
    fn power_at(&self, t: SimTime) -> Power {
        match self {
            NodeSource::Harvested(s) => s.power_at(t),
            NodeSource::Steady(s) => s.power_at(t),
            NodeSource::Hybrid(s, floor) => s.power_at(t) + floor.power_at(t),
        }
    }

    fn energy_between(&self, from: SimTime, to: SimTime) -> Energy {
        match self {
            NodeSource::Harvested(s) => s.energy_between(from, to),
            NodeSource::Steady(s) => s.energy_between(from, to),
            NodeSource::Hybrid(s, floor) => {
                s.energy_between(from, to) + floor.energy_between(from, to)
            }
        }
    }

    fn mean_power(&self) -> Power {
        match self {
            NodeSource::Harvested(s) => s.mean_power(),
            NodeSource::Steady(s) => s.mean_power(),
            NodeSource::Hybrid(s, floor) => s.mean_power() + floor.mean_power(),
        }
    }
}

/// A fully described three-node body-area deployment (Section IV-A).
#[derive(Debug, Clone)]
pub struct Deployment {
    window: SimDuration,
    wifi: WifiOfficeModel,
    trace_seed: u64,
    trace_duration: SimDuration,
    location_scale: [f64; SensorLocation::COUNT],
    harvester_efficiency: f64,
    harvester_floor: Power,
    capacitor: Energy,
    costs: EnergyCostTable,
    nvp: Nvp,
    link: LinkModel,
    fully_powered: bool,
    battery_trickle: Option<Power>,
}

impl Deployment {
    /// Starts a builder with the calibrated defaults.
    #[must_use]
    pub fn builder() -> DeploymentBuilder {
        DeploymentBuilder::default()
    }

    /// The HAR window period (one simulation step).
    #[must_use]
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The per-node energy cost table.
    #[must_use]
    pub fn costs(&self) -> &EnergyCostTable {
        &self.costs
    }

    /// The radio link model.
    #[must_use]
    pub fn link(&self) -> LinkModel {
        self.link
    }

    /// Whether this deployment runs on a steady supply (baselines).
    #[must_use]
    pub fn is_fully_powered(&self) -> bool {
        self.fully_powered
    }

    /// Mean incident harvest power of the shared trace — the Baseline-2
    /// pruning budget input (Section IV-C).
    #[must_use]
    pub fn mean_incident_power(&self) -> Power {
        self.base_trace().mean_power()
    }

    fn base_trace(&self) -> origin_trace::PowerTrace {
        self.wifi.generate(self.trace_seed, self.trace_duration)
    }

    /// Instantiates the energy state machines of all three nodes (index =
    /// [`SensorLocation::index`]).
    #[must_use]
    pub fn build_nodes(&self) -> Vec<EnergyNode<NodeSource>> {
        self.build_nodes_scaled(1.0)
    }

    /// [`Deployment::build_nodes`] with every location's harvest power
    /// multiplied by `harvest_scale` — the per-user harvester placement
    /// factor population sweeps draw from
    /// `origin_core::PopulationSpec`. A scale of `1.0` is bit-identical
    /// to [`Deployment::build_nodes`]; steady (fully-powered) supplies
    /// ignore the scale entirely, and a hybrid node's battery trickle is
    /// unscaled (only the harvested share varies per user).
    #[must_use]
    pub fn build_nodes_scaled(&self, harvest_scale: f64) -> Vec<EnergyNode<NodeSource>> {
        let trace = self.base_trace();
        SensorLocation::ALL
            .iter()
            .map(|&loc| {
                let scaled = ScaledSource::new(
                    TraceSource::looping(trace.clone()),
                    self.location_scale[loc.index()] * harvest_scale,
                );
                let source = if self.fully_powered {
                    // Effectively unlimited: three orders of magnitude
                    // above any duty the policies schedule.
                    NodeSource::Steady(ConstantPower::new(Power::from_milliwatts(50.0)))
                } else if let Some(trickle) = self.battery_trickle {
                    NodeSource::Hybrid(scaled, ConstantPower::new(trickle))
                } else {
                    NodeSource::Harvested(scaled)
                };
                // A battery-backed node is not limited by the tiny storage
                // capacitor of the EH front-end.
                let capacitor = if self.fully_powered {
                    let battery = Energy::from_millijoules(1.0);
                    Capacitor::new(self.capacitor.max(battery)).with_initial_charge(battery)
                } else {
                    Capacitor::new(self.capacitor)
                };
                EnergyNode::new(
                    Harvester::new(source, self.harvester_efficiency)
                        .with_floor(self.harvester_floor),
                    capacitor,
                    self.nvp.clone(),
                    self.costs.clone(),
                )
            })
            .collect()
    }
}

/// Builder for [`Deployment`].
///
/// Defaults reproduce the paper's setup: a WiFi office harvest trace
/// shared by all three nodes (scaled per location), a 0.7-efficiency
/// harvester with a 2 µW rectifier floor, a 250 µJ storage capacitor, an
/// NVP, a reliable BLE-class link, and 500 ms HAR windows.
#[derive(Debug, Clone)]
pub struct DeploymentBuilder {
    inner: Deployment,
}

impl Default for DeploymentBuilder {
    fn default() -> Self {
        Self {
            inner: Deployment {
                window: SimDuration::from_millis(500),
                wifi: WifiOfficeModel::default(),
                trace_seed: 0x4F52_4947, // "ORIG"
                trace_duration: SimDuration::from_secs(1_800),
                // Chest faces the access point; the ankle is often
                // shadowed by furniture; the wrist swings through both.
                location_scale: [1.1, 0.85, 1.0],
                harvester_efficiency: 0.7,
                harvester_floor: Power::from_microwatts(2.0),
                capacitor: Energy::from_microjoules(500.0),
                costs: EnergyCostTable::default(),
                nvp: Nvp::non_volatile(),
                link: LinkModel::reliable(),
                fully_powered: false,
                battery_trickle: None,
            },
        }
    }
}

impl DeploymentBuilder {
    /// Seeds the synthetic harvest trace.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.trace_seed = seed;
        self
    }

    /// Replaces the office trace model.
    #[must_use]
    pub fn wifi_model(mut self, model: WifiOfficeModel) -> Self {
        self.inner.wifi = model;
        self
    }

    /// Sets the HAR window period.
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    #[must_use]
    pub fn window(mut self, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window period must be positive");
        self.inner.window = window;
        self
    }

    /// Sets per-location harvest scale factors.
    #[must_use]
    pub fn location_scale(mut self, scale: [f64; SensorLocation::COUNT]) -> Self {
        self.inner.location_scale = scale;
        self
    }

    /// Sets the storage capacitor size.
    #[must_use]
    pub fn capacitor(mut self, capacity: Energy) -> Self {
        self.inner.capacitor = capacity;
        self
    }

    /// Replaces the per-operation cost table.
    #[must_use]
    pub fn costs(mut self, costs: EnergyCostTable) -> Self {
        self.inner.costs = costs;
        self
    }

    /// Uses a volatile processor instead of the NVP (ablation).
    #[must_use]
    pub fn volatile_cpu(mut self) -> Self {
        self.inner.nvp = Nvp::volatile();
        self
    }

    /// Replaces the radio link model.
    #[must_use]
    pub fn link(mut self, link: LinkModel) -> Self {
        self.inner.link = link;
        self
    }

    /// Runs the deployment from a steady supply — the baselines' "fully
    /// powered system equipped with a steady power source".
    #[must_use]
    pub fn fully_powered(mut self) -> Self {
        self.inner.fully_powered = true;
        self
    }

    /// Adds a small battery trickle on top of the harvest — the hybrid
    /// deployment the Discussion section proposes "to minimize the energy
    /// footprint while maximizing the accuracy".
    #[must_use]
    pub fn hybrid(mut self, trickle: Power) -> Self {
        self.inner.battery_trickle = Some(trickle.clamp_non_negative());
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> Deployment {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_energy::DutyState;

    #[test]
    fn default_builds_three_harvested_nodes() {
        let d = Deployment::builder().seed(1).build();
        let nodes = d.build_nodes();
        assert_eq!(nodes.len(), 3);
        assert!(!d.is_fully_powered());
        assert_eq!(d.window(), SimDuration::from_millis(500));
        // Mean incident power sits in the calibrated tens-of-µW band.
        let mean = d.mean_incident_power().as_microwatts();
        assert!((20.0..120.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn fully_powered_nodes_never_starve() {
        let d = Deployment::builder().fully_powered().build();
        let mut nodes = d.build_nodes();
        let w = d.window();
        // One window of steady 50 mW at 0.7 efficiency dwarfs every cost.
        nodes[0].advance(SimTime::ZERO, SimTime::ZERO + w, DutyState::Sense);
        assert!(nodes[0].can_afford(Energy::from_microjoules(240.0)));
    }

    #[test]
    fn location_scales_differentiate_harvest() {
        let d = Deployment::builder().seed(2).build();
        let nodes = d.build_nodes();
        let horizon = SimTime::from_secs(600);
        let chest = nodes[SensorLocation::Chest.index()]
            .harvester()
            .harvest_between(SimTime::ZERO, horizon);
        let ankle = nodes[SensorLocation::LeftAnkle.index()]
            .harvester()
            .harvest_between(SimTime::ZERO, horizon);
        assert!(chest > ankle, "chest harvests more than the ankle");
    }

    #[test]
    fn trace_seed_changes_harvest() {
        let a = Deployment::builder().seed(3).build();
        let b = Deployment::builder().seed(4).build();
        let e = |d: &Deployment| {
            d.build_nodes()[0]
                .harvester()
                .harvest_between(SimTime::ZERO, SimTime::from_secs(60))
        };
        assert_ne!(e(&a), e(&b));
    }

    #[test]
    fn volatile_builder_switches_nvp() {
        let d = Deployment::builder().volatile_cpu().build();
        let mut nodes = d.build_nodes();
        // A failed attempt on a volatile node wastes stored energy.
        nodes[0].pay(Energy::ZERO); // touch to silence unused-mut lints
        let node = &mut nodes[0];
        assert!(!node.attempt_window(Energy::from_microjoules(90.0)));
        assert_eq!(node.counters().lost, 1);
    }

    #[test]
    fn harvest_scale_multiplies_and_unit_scale_is_identity() {
        let d = Deployment::builder().seed(6).build();
        let horizon = SimTime::from_secs(300);
        let harvested = |nodes: &[EnergyNode<NodeSource>]| {
            nodes[0]
                .harvester()
                .harvest_between(SimTime::ZERO, horizon)
                .as_microjoules()
        };
        let base = harvested(&d.build_nodes());
        assert_eq!(
            base,
            harvested(&d.build_nodes_scaled(1.0)),
            "1.0 is identity"
        );
        // The rectifier floor subtracts *after* scaling, so 2× incident
        // yields strictly more than 2× − floor but not exactly 2×.
        let doubled = harvested(&d.build_nodes_scaled(2.0));
        let halved = harvested(&d.build_nodes_scaled(0.5));
        assert!(doubled > 1.5 * base, "doubled = {doubled}, base = {base}");
        assert!(halved < 0.75 * base, "halved = {halved}, base = {base}");
        // A steady fully-powered supply ignores the scale.
        let fp = Deployment::builder().fully_powered().build();
        assert_eq!(
            harvested(&fp.build_nodes()),
            harvested(&fp.build_nodes_scaled(0.5))
        );
    }

    #[test]
    fn hybrid_source_adds_trickle_on_top_of_harvest() {
        let eh = Deployment::builder().seed(5).build();
        let hybrid = Deployment::builder()
            .seed(5)
            .hybrid(Power::from_microwatts(40.0))
            .build();
        let horizon = SimTime::from_secs(120);
        let harvested = |d: &Deployment| {
            d.build_nodes()[0]
                .harvester()
                .harvest_between(SimTime::ZERO, horizon)
                .as_microjoules()
        };
        let gain = harvested(&hybrid) - harvested(&eh);
        // 40 uW * 120 s * 0.7 efficiency = 3360 uJ extra.
        assert!((gain - 3_360.0).abs() < 50.0, "gain = {gain}");
    }

    #[test]
    #[should_panic(expected = "window period")]
    fn zero_window_panics() {
        let _ = Deployment::builder().window(SimDuration::ZERO);
    }
}
