//! Energy-ledger integration: per-slot conservation on every driver
//! configuration, exact event accounting against the report's own
//! counters, and the zero-perturbation guarantee of the ledger path.

use origin_core::{Deployment, ModelBank, PolicyKind, SimConfig, Simulator};
use origin_sensors::DatasetSpec;
use origin_telemetry::{
    DrawOp, LedgerAuditor, LedgerEntry, RecordingObserver, SimEvent, WithLedger,
};
use origin_types::{NodeId, SimDuration};

fn quick_models() -> ModelBank {
    let spec = DatasetSpec::mhealth_like().with_windows(10, 6);
    ModelBank::<f64>::train(&spec, 21).expect("training succeeds")
}

fn quick_sim() -> Simulator {
    Simulator::new(Deployment::builder().seed(21).build(), quick_models())
}

fn short(policy: PolicyKind) -> SimConfig {
    SimConfig::new(policy)
        .with_horizon(SimDuration::from_secs(300))
        .with_seed(5)
}

fn audit(sim: &Simulator, cfg: &SimConfig) -> origin_telemetry::LedgerAuditReport {
    let mut auditor = LedgerAuditor::default();
    let report = sim.run_observed(cfg, &mut auditor).expect("run succeeds");
    let audit = auditor.into_report();
    assert_eq!(
        audit.slots_audited,
        report.windows * report.node_counters.len() as u64,
        "every node-window closes exactly one audited slot"
    );
    assert!(
        audit.conserved(),
        "{}: {} violation(s), max residual {} uJ",
        report.policy_label,
        audit.violations.len(),
        audit.max_residual_uj
    );
    audit
}

/// Conservation holds on every policy the paper evaluates, at the
/// default 1e-9 µJ tolerance.
#[test]
fn ledger_conserves_on_every_policy() {
    let sim = quick_sim();
    for policy in [
        PolicyKind::NaiveAllOn,
        PolicyKind::RoundRobin { cycle: 3 },
        PolicyKind::RoundRobin { cycle: 12 },
        PolicyKind::Aas { cycle: 6 },
        PolicyKind::Aasr { cycle: 12 },
        PolicyKind::Origin { cycle: 12 },
    ] {
        let report = audit(&sim, &short(policy));
        assert!(report.harvested_uj > 0.0);
        assert!(report.drawn_uj > 0.0);
    }
}

/// Conservation also holds on the ablation drivers: volatile CPU,
/// steady supply, disabled nodes, sensor noise, oracle anticipation.
#[test]
fn ledger_conserves_on_ablation_drivers() {
    let models = quick_models();
    let volatile = Simulator::new(
        Deployment::builder().seed(21).volatile_cpu().build(),
        models.clone(),
    );
    audit(&volatile, &short(PolicyKind::NaiveAllOn));

    let steady = Simulator::new(
        Deployment::builder().seed(21).fully_powered().build(),
        models.clone(),
    );
    let report = audit(&steady, &short(PolicyKind::NaiveAllOn));
    assert!(report.harvested_uj > 0.0, "steady supply still flows");

    let harvesting = Simulator::new(Deployment::builder().seed(21).build(), models);
    audit(
        &harvesting,
        &short(PolicyKind::Origin { cycle: 12 }).with_disabled_nodes([NodeId::new(1)]),
    );
    audit(
        &harvesting,
        &short(PolicyKind::Origin { cycle: 12 }).with_noise_snr(10.0),
    );
    audit(
        &harvesting,
        &short(PolicyKind::Origin { cycle: 12 }).with_oracle_anticipation(),
    );
}

/// The ledger stream has an exact shape: fixed per-node-per-window
/// flows plus one `Drawn` entry per attempt outcome.
#[test]
fn ledger_event_counts_are_exact() {
    let sim = quick_sim();
    let cfg = short(PolicyKind::Origin { cycle: 12 });
    let mut observer = WithLedger(RecordingObserver::new());
    let report = sim.run_observed(&cfg, &mut observer).expect("run succeeds");

    let nodes = report.node_counters.len() as u64;
    let count = |f: &dyn Fn(&LedgerEntry) -> bool| {
        observer
            .0
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::Ledger { entry, .. } if f(entry)))
            .count() as u64
    };
    assert_eq!(count(&|e| matches!(e, LedgerEntry::Opening { .. })), nodes);
    let per_slot = report.windows * nodes;
    assert_eq!(
        count(&|e| matches!(e, LedgerEntry::Harvested { .. })),
        per_slot
    );
    assert_eq!(
        count(&|e| matches!(e, LedgerEntry::ChargeLoss { .. })),
        per_slot
    );
    assert_eq!(
        count(&|e| matches!(e, LedgerEntry::Clipped { .. })),
        per_slot
    );
    assert_eq!(
        count(&|e| matches!(e, LedgerEntry::Leaked { .. })),
        per_slot
    );
    assert_eq!(
        count(&|e| matches!(e, LedgerEntry::SlotClose { .. })),
        per_slot
    );
    assert_eq!(
        count(&|e| matches!(
            e,
            LedgerEntry::Drawn {
                op: DrawOp::Duty,
                ..
            }
        )),
        per_slot,
        "the duty draw is unconditional"
    );
    assert_eq!(
        count(&|e| matches!(
            e,
            LedgerEntry::Drawn {
                op: DrawOp::Infer,
                ..
            }
        )),
        report.completions
    );
    assert_eq!(
        count(&|e| matches!(
            e,
            LedgerEntry::Drawn {
                op: DrawOp::Checkpoint | DrawOp::Lost,
                ..
            }
        )),
        report.attempts - report.completions,
        "every failed attempt draws exactly once"
    );
}

/// Turning the ledger on cannot change the simulation: the report is
/// byte-identical to an unobserved run (the PR 1 zero-perturbation
/// guarantee extended to the ledger-enabled path).
#[test]
fn ledger_emission_does_not_perturb_the_simulation() {
    let sim = quick_sim();
    for policy in [
        PolicyKind::NaiveAllOn,
        PolicyKind::RoundRobin { cycle: 6 },
        PolicyKind::Origin { cycle: 12 },
    ] {
        let cfg = short(policy);
        let plain = sim.run(&cfg).expect("run succeeds");
        let mut observer = WithLedger(RecordingObserver::new());
        let observed = sim.run_observed(&cfg, &mut observer).expect("run succeeds");
        assert!(observer
            .0
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::Ledger { .. })));
        assert_eq!(
            format!("{plain:?}"),
            format!("{observed:?}"),
            "{policy:?}: ledger emission changed the simulation outcome"
        );
    }
}

/// The audit totals agree with the report's own energy breakdown
/// (two independent accountings of the same run).
#[test]
fn audit_totals_match_the_report_breakdown() {
    let sim = quick_sim();
    let cfg = short(PolicyKind::Origin { cycle: 12 });
    let mut auditor = LedgerAuditor::default();
    let report = sim.run_observed(&cfg, &mut auditor).expect("run succeeds");
    let audit = auditor.into_report();
    let breakdown = report.energy_breakdown();
    let close = |a: f64, b: f64| (a - b).abs() < 1e-6;
    assert!(close(
        audit.harvested_uj,
        breakdown.offered.as_microjoules()
    ));
    assert!(close(
        audit.charge_loss_uj,
        breakdown.charge_loss.as_microjoules()
    ));
    assert!(close(audit.clipped_uj, breakdown.clipped.as_microjoules()));
    assert!(close(audit.leaked_uj, breakdown.leaked.as_microjoules()));
}
