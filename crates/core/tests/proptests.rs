//! Property tests for the Origin policy layer.

use origin_core::{
    majority_vote, weighted_vote, ConfidenceMatrix, PolicyKind, PolicyState, RankTable,
    RecallEntry, RecallStore, SlotKind, Slots, Vote,
};
use origin_nn::ConfusionMatrix;
use origin_types::{ActivityClass, ActivitySet, NodeId, SimTime};
use proptest::prelude::*;

fn arb_vote() -> impl Strategy<Value = Vote> {
    (0u32..3, 0usize..6, 0.0f64..0.2, 0u64..10_000).prop_map(|(node, class, conf, at)| Vote {
        node: NodeId::new(node),
        activity: ActivityClass::from_index(class).expect("valid"),
        confidence: conf,
        reported_at: SimTime::from_millis(at),
    })
}

fn rank_table(seed: u64) -> RankTable {
    let matrices: Vec<ConfusionMatrix> = (0..3)
        .map(|node| {
            let mut m = ConfusionMatrix::new(6);
            for c in 0..6 {
                let correct = 3 + ((seed as usize + node * 7 + c * 3) % 7);
                for _ in 0..correct {
                    m.record(c, c);
                }
                for _ in 0..(10 - correct) {
                    m.record(c, (c + 1) % 6);
                }
            }
            m
        })
        .collect();
    RankTable::from_validation(ActivitySet::mhealth(), &matrices)
}

proptest! {
    #[test]
    fn slots_have_exactly_three_sensor_slots_per_cycle(multiple in 1u8..20) {
        let cycle = multiple.saturating_mul(3).max(3);
        let slots = Slots::new(cycle, 3).expect("valid cycle");
        let sensor_count = slots
            .layout()
            .iter()
            .filter(|k| matches!(k, SlotKind::Sensor { .. }))
            .count();
        prop_assert_eq!(sensor_count, 3);
        prop_assert_eq!(slots.noops(), usize::from(cycle) - 3);
        // Periodicity.
        for w in 0..u64::from(cycle) {
            prop_assert_eq!(slots.slot_at(w), slots.slot_at(w + u64::from(cycle)));
        }
        // Ordinals appear in order 0,1,2 within a cycle.
        let ordinals: Vec<usize> = slots
            .layout()
            .iter()
            .filter_map(|k| match k {
                SlotKind::Sensor { ordinal } => Some(*ordinal),
                SlotKind::NoOp => None,
            })
            .collect();
        prop_assert_eq!(ordinals, vec![0, 1, 2]);
    }

    #[test]
    fn majority_vote_returns_a_cast_class(votes in proptest::collection::vec(arb_vote(), 1..8)) {
        let verdict = majority_vote(&votes).expect("non-empty");
        prop_assert!(votes.iter().any(|v| v.activity == verdict));
        // The winner's support is maximal.
        let support = |class: ActivityClass| votes.iter().filter(|v| v.activity == class).count();
        let winner_support = support(verdict);
        for v in &votes {
            prop_assert!(support(v.activity) <= winner_support);
        }
    }

    #[test]
    fn weighted_vote_returns_in_set_class(
        votes in proptest::collection::vec(arb_vote(), 1..8),
        alpha in 0.01f64..1.0,
    ) {
        let matrix = ConfidenceMatrix::uniform(ActivitySet::mhealth(), 3, alpha);
        let verdict = weighted_vote(&votes, &matrix).expect("all votes in set");
        prop_assert!(votes.iter().any(|v| v.activity == verdict));
    }

    #[test]
    fn confidence_updates_stay_within_observed_range(
        updates in proptest::collection::vec((0u32..3, 0usize..6, 0.0f64..0.14), 0..200),
        alpha in 0.01f64..1.0,
    ) {
        let mut matrix = ConfidenceMatrix::uniform(ActivitySet::mhealth(), 3, alpha);
        for (node, class, conf) in &updates {
            matrix.update(
                NodeId::new(*node),
                ActivityClass::from_index(*class).expect("valid"),
                *conf,
            );
        }
        // Every weight stays within [0, max(initial, observed max)].
        let ceiling = 1.0f64 / 6.0;
        for node in 0..3 {
            for class in ActivityClass::ALL {
                let w = matrix.weight(NodeId::new(node), class).expect("in set");
                prop_assert!(w >= 0.0);
                prop_assert!(w <= ceiling.max(0.14) + 1e-12);
            }
        }
        prop_assert_eq!(matrix.update_count(), updates.len() as u64);
    }

    #[test]
    fn recall_store_most_recent_is_maximal(
        entries in proptest::collection::vec((0u32..3, 0usize..6, 0u64..100_000), 1..30),
    ) {
        let mut store = RecallStore::new(3);
        for (node, class, at) in &entries {
            store.record(
                NodeId::new(*node),
                RecallEntry {
                    activity: ActivityClass::from_index(*class).expect("valid"),
                    confidence: 0.1,
                    reported_at: SimTime::from_millis(*at),
                },
            );
        }
        let (_, freshest) = store.most_recent().expect("at least one entry");
        for (node, e) in store.votes() {
            prop_assert!(e.reported_at <= freshest.reported_at, "{node} newer than freshest");
        }
        prop_assert!(store.votes().count() <= 3);
    }

    #[test]
    fn policy_plans_are_well_formed(
        seed in 0u64..100,
        cycle_mult in 1u8..5,
        windows in 1u64..100,
        headroom in proptest::collection::vec(0.0f64..3.0, 3),
    ) {
        let cycle = cycle_mult * 3;
        for kind in [
            PolicyKind::RoundRobin { cycle },
            PolicyKind::Aas { cycle },
            PolicyKind::Aasr { cycle },
            PolicyKind::Origin { cycle },
        ] {
            let mut policy = PolicyState::new(kind, rank_table(seed), 3).expect("valid");
            let mut attempts = 0u64;
            for w in 0..windows {
                let plan = policy.plan(w, Some(ActivityClass::Walking), &headroom);
                prop_assert!(plan.attempters.len() <= 1, "{kind}: at most one attempter");
                attempts += plan.attempters.len() as u64;
                for a in &plan.attempters {
                    prop_assert!(a.as_usize() < 3);
                }
            }
            // ER-r policies attempt on exactly the sensor slots.
            let expected = (0..windows)
                .filter(|w| {
                    matches!(
                        Slots::new(cycle, 3).expect("valid").slot_at(*w),
                        SlotKind::Sensor { .. }
                    )
                })
                .count() as u64;
            prop_assert_eq!(attempts, expected, "{} attempt cadence", kind);
        }
    }
}
