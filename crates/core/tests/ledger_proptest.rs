//! Property test: ledger conservation holds on randomly drawn
//! (policy × seed × user) cells, not just the hand-picked configs of
//! `tests/ledger.rs`.

use origin_core::{Deployment, ModelBank, PolicyKind, SimConfig, Simulator};
use origin_sensors::{DatasetSpec, UserProfile};
use origin_telemetry::LedgerAuditor;
use origin_types::{SimDuration, UserId};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One trained simulator shared across all proptest cases (training
/// dominates the runtime; the cases only vary the run config).
fn shared_sim() -> &'static Simulator {
    static SIM: OnceLock<Simulator> = OnceLock::new();
    SIM.get_or_init(|| {
        let spec = DatasetSpec::mhealth_like().with_windows(10, 6);
        let models = ModelBank::<f64>::train(&spec, 21).expect("training succeeds");
        Simulator::new(Deployment::builder().seed(21).build(), models)
    })
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    (0usize..5, prop_oneof![Just(3u8), Just(6), Just(12)]).prop_map(|(kind, cycle)| match kind {
        0 => PolicyKind::NaiveAllOn,
        1 => PolicyKind::RoundRobin { cycle },
        2 => PolicyKind::Aas { cycle },
        3 => PolicyKind::Aasr { cycle },
        _ => PolicyKind::Origin { cycle },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every slot of every random cell balances within 1e-9 µJ.
    #[test]
    fn random_cells_conserve_energy(
        policy in arb_policy(),
        seed in 0u64..1_000,
        user_seed in 0u64..1_000,
        spread in 0.0f64..0.3,
    ) {
        let cfg = SimConfig::new(policy)
            .with_horizon(SimDuration::from_secs(120))
            .with_seed(seed)
            .with_user(UserProfile::sampled(UserId::new(0), spread, user_seed));
        let mut auditor = LedgerAuditor::default();
        let report = shared_sim()
            .run_observed(&cfg, &mut auditor)
            .expect("run succeeds");
        let audit = auditor.into_report();
        prop_assert_eq!(
            audit.slots_audited,
            report.windows * report.node_counters.len() as u64
        );
        prop_assert!(
            audit.conserved(),
            "{:?} seed {} user {} spread {}: max residual {} uJ",
            policy,
            seed,
            user_seed,
            spread,
            audit.max_residual_uj
        );
    }
}
