//! Telemetry integration: the zero-perturbation guarantee and the
//! event-stream invariants against the report's own counters.

use origin_core::{Deployment, ModelBank, PolicyKind, SimConfig, Simulator};
use origin_sensors::DatasetSpec;
use origin_telemetry::{
    EventKind, JsonValue, JsonlObserver, MetricsObserver, RecordingObserver, SimEvent, Tee,
};
use origin_types::SimDuration;

fn quick_sim() -> Simulator {
    let spec = DatasetSpec::mhealth_like().with_windows(10, 6);
    let models = ModelBank::<f64>::train(&spec, 21).expect("training succeeds");
    let deployment = Deployment::builder().seed(21).build();
    Simulator::new(deployment, models)
}

fn short(policy: PolicyKind) -> SimConfig {
    SimConfig::new(policy)
        .with_horizon(SimDuration::from_secs(300))
        .with_seed(5)
}

/// Observers are pure consumers: an instrumented run must produce a
/// byte-identical report to an unobserved run of the same config.
#[test]
fn observed_runs_do_not_perturb_the_simulation() {
    let sim = quick_sim();
    for policy in [
        PolicyKind::NaiveAllOn,
        PolicyKind::RoundRobin { cycle: 6 },
        PolicyKind::Origin { cycle: 12 },
    ] {
        let cfg = short(policy);
        let plain = sim.run(&cfg).unwrap();
        let mut observer = Tee(RecordingObserver::new(), MetricsObserver::new());
        let observed = sim.run_observed(&cfg, &mut observer).unwrap();
        assert!(
            !observer.0.events().is_empty(),
            "{policy:?}: the observed run must emit events"
        );
        assert_eq!(
            format!("{plain:?}"),
            format!("{observed:?}"),
            "{policy:?}: observer changed the simulation outcome"
        );
    }
}

/// Event counts must agree with the report's own aggregate counters.
#[test]
fn event_counts_match_report_counters() {
    let sim = quick_sim();
    let cfg = short(PolicyKind::Origin { cycle: 12 });
    let mut rec = RecordingObserver::new();
    let report = sim.run_observed(&cfg, &mut rec).unwrap();

    let node_count = report.node_counters.len() as u64;
    let count = |kind| rec.count(kind) as u64;
    assert_eq!(count(EventKind::WindowStart), report.windows);
    assert_eq!(count(EventKind::SlotScheduled), report.windows);
    assert_eq!(count(EventKind::HarvestSlice), report.windows * node_count);
    assert_eq!(count(EventKind::InferenceAttempt), report.attempts);
    assert_eq!(count(EventKind::InferenceCompleted), report.completions);
    assert_eq!(
        count(EventKind::MessageTx) + count(EventKind::MessageDrop),
        report.messages_sent
    );
    assert_eq!(count(EventKind::MessageDrop), report.messages_dropped);
    assert_eq!(count(EventKind::EnsembleVote), report.windows);
    assert_eq!(count(EventKind::RecallServed), report.windows);
    // An attempt either completes or browns out (no node is disabled).
    assert_eq!(
        count(EventKind::InferenceCompleted) + count(EventKind::InferenceBrownout),
        report.attempts
    );
    // Per-node bus counters sum to the totals.
    assert_eq!(report.sent_by_node.len() as u64, node_count);
    assert!(report.sent_by_node.iter().sum::<u64>() <= report.messages_sent);
    assert_eq!(report.dropped_by_node.iter().sum::<u64>(), {
        // Only nodes transmit in this stack, so every drop is attributed.
        report.messages_dropped
    });
}

/// The JSONL sink must write one parseable object per event, and the
/// metrics aggregator must agree with the recorder.
#[test]
fn jsonl_lines_parse_and_metrics_agree() {
    let sim = quick_sim();
    let cfg = short(PolicyKind::Origin { cycle: 12 });
    let mut observer = Tee(
        Tee(RecordingObserver::new(), MetricsObserver::new()),
        JsonlObserver::new(Vec::new()),
    );
    let _ = sim.run_observed(&cfg, &mut observer).unwrap();
    let Tee(Tee(rec, metrics), jsonl) = observer;

    assert_eq!(jsonl.events_written() as usize, rec.events().len());
    assert_eq!(metrics.total() as usize, rec.events().len());

    let bytes = jsonl.finish().unwrap();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), rec.events().len());
    for (line, event) in lines.iter().zip(rec.events()) {
        let json = JsonValue::parse(line)
            .unwrap_or_else(|e| panic!("unparseable JSONL line {line:?}: {e}"));
        assert_eq!(
            json.get("event").and_then(JsonValue::as_str),
            Some(event.kind().name())
        );
    }
    // Per-kind counters in the registry match the recorder.
    for kind in [
        EventKind::WindowStart,
        EventKind::InferenceAttempt,
        EventKind::MessageTx,
        EventKind::EnsembleVote,
    ] {
        assert_eq!(metrics.count(kind), rec.count(kind) as u64);
    }
}

/// ER-r no-op slots must surface as idle `SlotScheduled` events.
#[test]
fn idle_slots_are_observed() {
    let sim = quick_sim();
    // RR12 over 3 nodes: 9 of every 12 slots are no-ops.
    let cfg = short(PolicyKind::RoundRobin { cycle: 12 });
    let mut rec = RecordingObserver::new();
    let report = sim.run_observed(&cfg, &mut rec).unwrap();
    let idle = rec
        .events()
        .iter()
        .filter(|e| matches!(e, SimEvent::SlotScheduled { idle: true, .. }))
        .count() as u64;
    assert_eq!(idle, report.windows - report.attempt_windows);
    assert!(idle > 0, "an ER-12 run must include no-op slots");
}
