//! Minimal CSV persistence for power traces.
//!
//! Format: a header line `interval_us,<n>` followed by one µW sample per
//! line. This keeps generated calibration traces inspectable with ordinary
//! text tools without pulling a CSV dependency into the workspace.

use crate::error::TraceError;
use crate::trace::PowerTrace;
use origin_types::SimDuration;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Writes `trace` to `writer` in the workspace CSV format.
///
/// A `&mut` reference may be passed for `writer` (the std blanket impl of
/// [`Write`] for `&mut W` applies).
///
/// # Errors
///
/// Returns [`TraceError::Io`] when the underlying writer fails.
pub fn write_trace_csv<W: Write>(trace: &PowerTrace, writer: W) -> Result<(), TraceError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "interval_us,{}", trace.interval().as_micros())?;
    for sample in trace.samples_microwatts() {
        writeln!(w, "{sample}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a trace previously written with [`write_trace_csv`].
///
/// A `&mut` reference may be passed for `reader`.
///
/// # Errors
///
/// * [`TraceError::ParseLine`] when the header or a sample line is
///   malformed.
/// * [`TraceError::EmptyTrace`] / [`TraceError::InvalidSample`] when the
///   parsed content does not form a valid trace.
/// * [`TraceError::Io`] on underlying reader failure.
pub fn read_trace_csv<R: Read>(reader: R) -> Result<PowerTrace, TraceError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or(TraceError::EmptyTrace)?
        .map_err(TraceError::Io)?;
    let interval_us: u64 = header
        .strip_prefix("interval_us,")
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| TraceError::ParseLine {
            line: 1,
            content: header.clone(),
        })?;
    let mut samples = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line.map_err(TraceError::Io)?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let value: f64 = trimmed.parse().map_err(|_| TraceError::ParseLine {
            line: i + 2,
            content: line.clone(),
        })?;
        samples.push(value);
    }
    PowerTrace::from_microwatts(samples, SimDuration::from_micros(interval_us))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wifi::WifiOfficeModel;

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = WifiOfficeModel::default().generate(11, SimDuration::from_secs(5));
        let mut buf = Vec::new();
        write_trace_csv(&trace, &mut buf).unwrap();
        let back = read_trace_csv(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace_csv("bogus\n1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::ParseLine { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_sample_line() {
        let err = read_trace_csv("interval_us,1000\nnot-a-number\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::ParseLine { line: 2, .. }));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(
            read_trace_csv("".as_bytes()),
            Err(TraceError::EmptyTrace)
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let trace = read_trace_csv("interval_us,1000\n1.5\n\n2.5\n".as_bytes()).unwrap();
        assert_eq!(trace.samples_microwatts(), &[1.5, 2.5]);
        assert_eq!(trace.interval(), SimDuration::from_micros(1000));
    }

    #[test]
    fn rejects_negative_sample_via_trace_validation() {
        let err = read_trace_csv("interval_us,1000\n-4.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::InvalidSample { .. }));
    }
}
