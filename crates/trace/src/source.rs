//! The [`PowerSource`] abstraction consumed by the energy substrate.

use crate::trace::PowerTrace;
#[cfg(test)]
use origin_types::SimDuration;
use origin_types::{Energy, Power, SimTime};

/// Something that delivers harvestable power over simulated time.
///
/// The energy substrate only ever asks two questions: the instantaneous
/// power at an instant (for reporting) and the energy delivered over a span
/// (for capacitor updates). Implementations must be deterministic — the
/// same span always yields the same energy — so simulations are exactly
/// repeatable.
pub trait PowerSource {
    /// Instantaneous power at `t`.
    fn power_at(&self, t: SimTime) -> Power;

    /// Energy delivered over `[from, to)`. Must return zero when
    /// `to <= from` and must be additive over adjacent spans.
    fn energy_between(&self, from: SimTime, to: SimTime) -> Energy;

    /// Long-run mean power of the source, used as the Baseline-2 pruning
    /// budget.
    fn mean_power(&self) -> Power;
}

/// A steady power supply — the "fully powered system equipped with a steady
/// power source" that both baselines run on (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantPower {
    level: Power,
}

impl ConstantPower {
    /// A constant source at `level`.
    #[must_use]
    pub fn new(level: Power) -> Self {
        Self { level }
    }
}

impl PowerSource for ConstantPower {
    fn power_at(&self, _t: SimTime) -> Power {
        self.level
    }

    fn energy_between(&self, from: SimTime, to: SimTime) -> Energy {
        if to <= from {
            return Energy::ZERO;
        }
        self.level.over(to - from)
    }

    fn mean_power(&self) -> Power {
        self.level
    }
}

/// A [`PowerTrace`]-backed source.
///
/// In looping mode the trace repeats forever, which lets a minutes-long
/// synthetic office trace drive hours of simulated activity (the paper's
/// trace is similarly reused across experiments).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSource {
    trace: PowerTrace,
    looping: bool,
}

impl TraceSource {
    /// A source that clamps to the final sample once the trace ends.
    #[must_use]
    pub fn new(trace: PowerTrace) -> Self {
        Self {
            trace,
            looping: false,
        }
    }

    /// A source that wraps around to the start when the trace ends.
    #[must_use]
    pub fn looping(trace: PowerTrace) -> Self {
        Self {
            trace,
            looping: true,
        }
    }

    /// The underlying trace.
    #[must_use]
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    fn wrap(&self, t: SimTime) -> SimTime {
        let total = self.trace.duration().as_micros();
        SimTime::from_micros(t.as_micros() % total)
    }
}

impl PowerSource for TraceSource {
    fn power_at(&self, t: SimTime) -> Power {
        if self.looping {
            self.trace.power_at(self.wrap(t))
        } else {
            self.trace.power_at(t)
        }
    }

    fn energy_between(&self, from: SimTime, to: SimTime) -> Energy {
        if to <= from {
            return Energy::ZERO;
        }
        if !self.looping {
            return self.trace.energy_between(from, to);
        }
        let total_us = self.trace.duration().as_micros();
        // Whole loops between the two instants.
        let loops_from = from.as_micros() / total_us;
        let loops_to = to.as_micros() / total_us;
        if loops_from == loops_to {
            // Common case: the span stays within one traversal of the
            // trace — never pay for a full-trace integration here.
            return self.trace.energy_between(self.wrap(from), self.wrap(to));
        }
        let full_trace_energy = self
            .trace
            .energy_between(SimTime::ZERO, SimTime::from_micros(total_us));
        let mut energy = Energy::ZERO;
        // Tail of the first loop.
        energy += self
            .trace
            .energy_between(self.wrap(from), SimTime::from_micros(total_us));
        // Whole intermediate loops.
        energy += full_trace_energy * (loops_to - loops_from - 1) as f64;
        // Head of the final loop.
        energy += self.trace.energy_between(SimTime::ZERO, self.wrap(to));
        energy
    }

    fn mean_power(&self) -> Power {
        self.trace.mean_power()
    }
}

/// Wraps any source and scales its output by a constant factor.
///
/// Models location-dependent harvest efficiency: the chest antenna faces the
/// office access point while the ankle is frequently shadowed, so "each
/// sensor can harvest ... different amounts of energy depending upon their
/// location" (Section I).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledSource<S> {
    inner: S,
    factor: f64,
}

impl<S: PowerSource> ScaledSource<S> {
    /// Scales `inner` by `factor`.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is negative or non-finite.
    #[must_use]
    pub fn new(inner: S, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        Self { inner, factor }
    }

    /// The wrapped source.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The scale factor.
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl<S: PowerSource> PowerSource for ScaledSource<S> {
    fn power_at(&self, t: SimTime) -> Power {
        self.inner.power_at(t) * self.factor
    }

    fn energy_between(&self, from: SimTime, to: SimTime) -> Energy {
        self.inner.energy_between(from, to) * self.factor
    }

    fn mean_power(&self) -> Power {
        self.inner.mean_power() * self.factor
    }
}

// Allow boxed sources to be used wherever a source is expected.
impl<S: PowerSource + ?Sized> PowerSource for Box<S> {
    fn power_at(&self, t: SimTime) -> Power {
        (**self).power_at(t)
    }
    fn energy_between(&self, from: SimTime, to: SimTime) -> Energy {
        (**self).energy_between(from, to)
    }
    fn mean_power(&self) -> Power {
        (**self).mean_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(samples: Vec<f64>, ms: u64) -> PowerTrace {
        PowerTrace::from_microwatts(samples, SimDuration::from_millis(ms)).unwrap()
    }

    #[test]
    fn constant_source_integrates_linearly() {
        let s = ConstantPower::new(Power::from_microwatts(40.0));
        let e = s.energy_between(SimTime::ZERO, SimTime::from_millis(2500));
        assert!((e.as_microjoules() - 100.0).abs() < 1e-9);
        assert_eq!(s.mean_power().as_microwatts(), 40.0);
        assert_eq!(
            s.energy_between(SimTime::from_millis(5), SimTime::ZERO),
            Energy::ZERO
        );
    }

    #[test]
    fn looping_source_wraps() {
        let src = TraceSource::looping(trace(vec![100.0, 0.0], 100));
        // One full loop delivers 10uJ.
        let one_loop = src.energy_between(SimTime::ZERO, SimTime::from_millis(200));
        assert!((one_loop.as_microjoules() - 10.0).abs() < 1e-9);
        // Ten loops deliver 100uJ.
        let ten = src.energy_between(SimTime::ZERO, SimTime::from_millis(2000));
        assert!((ten.as_microjoules() - 100.0).abs() < 1e-9);
        // Spanning a wrap boundary: last 50ms of loop (0uW) + first 50ms (100uW).
        let wrap = src.energy_between(SimTime::from_millis(150), SimTime::from_millis(250));
        assert!((wrap.as_microjoules() - 5.0).abs() < 1e-9);
        // power_at wraps.
        assert_eq!(
            src.power_at(SimTime::from_millis(200)).as_microwatts(),
            100.0
        );
    }

    #[test]
    fn looping_source_is_additive() {
        let src = TraceSource::looping(trace(vec![10.0, 90.0, 0.0], 100));
        let a = src.energy_between(SimTime::ZERO, SimTime::from_millis(730));
        let b = src.energy_between(SimTime::ZERO, SimTime::from_millis(410))
            + src.energy_between(SimTime::from_millis(410), SimTime::from_millis(730));
        assert!((a.as_microjoules() - b.as_microjoules()).abs() < 1e-9);
    }

    #[test]
    fn non_looping_clamps() {
        let src = TraceSource::new(trace(vec![100.0], 100));
        let e = src.energy_between(SimTime::from_millis(500), SimTime::from_millis(600));
        assert!((e.as_microjoules() - 10.0).abs() < 1e-9);
        assert_eq!(src.trace().len(), 1);
    }

    #[test]
    fn scaled_source_scales_everything() {
        let s = ScaledSource::new(ConstantPower::new(Power::from_microwatts(40.0)), 0.5);
        assert_eq!(s.power_at(SimTime::ZERO).as_microwatts(), 20.0);
        assert_eq!(s.mean_power().as_microwatts(), 20.0);
        let e = s.energy_between(SimTime::ZERO, SimTime::from_secs(1));
        assert!((e.as_microjoules() - 20.0).abs() < 1e-9);
        assert_eq!(s.factor(), 0.5);
        assert_eq!(s.inner().mean_power().as_microwatts(), 40.0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_source_rejects_nan() {
        let _ = ScaledSource::new(ConstantPower::new(Power::ZERO), f64::NAN);
    }

    #[test]
    fn boxed_source_delegates() {
        let boxed: Box<dyn PowerSource> = Box::new(ConstantPower::new(Power::from_microwatts(7.0)));
        assert_eq!(boxed.mean_power().as_microwatts(), 7.0);
        let e = boxed.energy_between(SimTime::ZERO, SimTime::from_secs(2));
        assert!((e.as_microjoules() - 14.0).abs() < 1e-9);
        assert_eq!(boxed.power_at(SimTime::ZERO).as_microwatts(), 7.0);
    }
}
