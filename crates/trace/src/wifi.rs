//! Synthetic WiFi-office harvest trace generator.
//!
//! The paper uses "a real power trace harvested from a WiFi source while
//! doing various day to day tasks in an office environment" from the
//! ReSiRCa setup [6]. We replace it with a seeded Markov-modulated process
//! over three regimes — [`WifiRegime::Quiet`], [`WifiRegime::Ambient`] and
//! [`WifiRegime::Burst`] — which captures the two properties the schedulers
//! actually react to:
//!
//! 1. **scarcity** — the long-run mean sits far below the power an always-on
//!    DNN inference pipeline would need, and
//! 2. **burstiness** — the power arrives in on/off bursts (WiFi traffic is
//!    bursty), so a sensor that waits accumulates usable packets of energy
//!    while a sensor that attempts continuously mostly browns out.

use crate::trace::PowerTrace;
use origin_types::{sum_ordered, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The hidden regime of the office RF environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WifiRegime {
    /// No nearby traffic: only ambient leakage, often ~0 µW.
    Quiet,
    /// Background beacons and light traffic.
    Ambient,
    /// Heavy traffic near the harvester (downloads, video calls).
    Burst,
}

impl WifiRegime {
    /// All regimes in index order.
    pub const ALL: [WifiRegime; 3] = [WifiRegime::Quiet, WifiRegime::Ambient, WifiRegime::Burst];
}

/// Configuration for the synthetic office harvest process.
///
/// The defaults are calibrated (see `calibration` tests and the Fig. 1
/// harness) so that, with the workspace's default per-inference energy
/// costs:
///
/// * naive always-on scheduling completes ~10% of inferences
///   (Fig. 1a: 1% all three, 9% at least one),
/// * plain RR3 completes ~28% (Fig. 1b),
/// * RR12 completes the large majority.
///
/// ```
/// use origin_trace::WifiOfficeModel;
/// use origin_types::SimDuration;
///
/// let trace = WifiOfficeModel::default().generate(7, SimDuration::from_secs(120));
/// let stats = trace.stats();
/// assert!(stats.mean().as_microwatts() > 10.0);
/// assert!(stats.burstiness() > 0.8); // fickle, as the paper insists
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WifiOfficeModel {
    /// Sample interval of the generated trace.
    pub interval: SimDuration,
    /// Mean power while [`WifiRegime::Quiet`], µW.
    pub quiet_uw: f64,
    /// Mean power while [`WifiRegime::Ambient`], µW.
    pub ambient_uw: f64,
    /// Mean power while [`WifiRegime::Burst`], µW.
    pub burst_uw: f64,
    /// Multiplicative jitter applied per sample (uniform in `1 ± jitter`).
    pub jitter: f64,
    /// Mean dwell in each regime, in samples: `[quiet, ambient, burst]`.
    pub mean_dwell: [f64; 3],
    /// Row-stochastic regime transition matrix (rows: from-regime in
    /// [`WifiRegime::ALL`] order; columns: to-regime). Diagonal entries are
    /// ignored — dwell is governed by `mean_dwell`.
    pub transitions: [[f64; 3]; 3],
    /// Optional day/night envelope multiplying the generated samples.
    pub diurnal: Option<DiurnalProfile>,
}

/// A day/night activity envelope for multi-hour traces.
///
/// Office WiFi traffic collapses outside working hours; an envelope of
/// `night_scale` (e.g. 0.1) applies outside the working window of each
/// `period`-long day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalProfile {
    /// Length of one day.
    pub period: SimDuration,
    /// Fraction of the day at full activity (the working window starts at
    /// t = 0 of each period).
    pub day_fraction: f64,
    /// Multiplier applied outside the working window, in `[0, 1]`.
    pub night_scale: f64,
}

impl DiurnalProfile {
    /// A standard office day: 9 active hours out of 24, nights at 10%.
    #[must_use]
    pub fn office() -> Self {
        Self {
            period: SimDuration::from_secs(24 * 3_600),
            day_fraction: 9.0 / 24.0,
            night_scale: 0.1,
        }
    }

    /// The envelope value at `t`.
    ///
    /// # Panics
    ///
    /// Panics when the profile is degenerate (zero period, fractions
    /// outside `[0, 1]`).
    #[must_use]
    pub fn envelope_at(&self, t: SimDuration) -> f64 {
        assert!(!self.period.is_zero(), "diurnal period must be positive");
        assert!(
            (0.0..=1.0).contains(&self.day_fraction) && (0.0..=1.0).contains(&self.night_scale),
            "diurnal fractions must be in [0, 1]"
        );
        let phase =
            (t.as_micros() % self.period.as_micros()) as f64 / self.period.as_micros() as f64;
        if phase < self.day_fraction {
            1.0
        } else {
            self.night_scale
        }
    }
}

impl Default for WifiOfficeModel {
    fn default() -> Self {
        Self {
            interval: SimDuration::from_millis(100),
            quiet_uw: 2.0,
            ambient_uw: 45.0,
            burst_uw: 260.0,
            jitter: 0.35,
            // Office RF: long quiet gaps, medium ambient spans, short bursts.
            mean_dwell: [60.0, 40.0, 12.0],
            transitions: [
                // from Quiet: mostly to Ambient, sometimes straight to Burst
                [0.0, 0.8, 0.2],
                // from Ambient: back to Quiet or up to Burst
                [0.55, 0.0, 0.45],
                // from Burst: cool down to Ambient, occasionally straight off
                [0.35, 0.65, 0.0],
            ],
            diurnal: None,
        }
    }
}

impl WifiOfficeModel {
    /// A variant tuned for richer harvest (e.g. a desk right next to the
    /// access point); useful for the "abundant energy supply" discussion in
    /// Section IV-C.
    #[must_use]
    pub fn rich_office() -> Self {
        Self {
            ambient_uw: 90.0,
            burst_uw: 420.0,
            mean_dwell: [25.0, 55.0, 20.0],
            ..Self::default()
        }
    }

    /// A variant tuned for very scarce harvest (far corner office).
    #[must_use]
    pub fn sparse_office() -> Self {
        Self {
            ambient_uw: 25.0,
            burst_uw: 140.0,
            mean_dwell: [110.0, 30.0, 8.0],
            ..Self::default()
        }
    }

    /// Adds a day/night envelope. Builder-style.
    #[must_use]
    pub fn with_diurnal(mut self, profile: DiurnalProfile) -> Self {
        self.diurnal = Some(profile);
        self
    }

    /// Generates a trace of the requested duration from `seed`.
    ///
    /// The same `(seed, duration)` pair always produces the identical trace.
    ///
    /// # Panics
    ///
    /// Panics when `duration` is shorter than one sample interval, when any
    /// regime power is negative/non-finite, or when `jitter` is not within
    /// `[0, 1)`.
    #[must_use]
    pub fn generate(&self, seed: u64, duration: SimDuration) -> PowerTrace {
        let n = duration.steps_of(self.interval);
        assert!(n > 0, "duration must cover at least one sample interval");
        for level in [self.quiet_uw, self.ambient_uw, self.burst_uw] {
            assert!(
                level.is_finite() && level >= 0.0,
                "regime power must be finite and non-negative"
            );
        }
        assert!(
            (0.0..1.0).contains(&self.jitter),
            "jitter must be in [0, 1), got {}",
            self.jitter
        );

        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(n as usize);
        let mut regime = WifiRegime::Ambient;
        let mut remaining = self.sample_dwell(&mut rng, regime);
        for _ in 0..n {
            if remaining == 0 {
                regime = self.next_regime(&mut rng, regime);
                remaining = self.sample_dwell(&mut rng, regime);
            }
            remaining -= 1;
            let base = self.regime_power(regime);
            let jitter = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            let envelope = self
                .diurnal
                .map_or(1.0, |d| d.envelope_at(self.interval * samples.len() as u64));
            samples.push((base * jitter * envelope).max(0.0));
        }
        PowerTrace::from_microwatts(samples, self.interval)
            .expect("generated samples are valid by construction")
    }

    fn regime_power(&self, regime: WifiRegime) -> f64 {
        match regime {
            WifiRegime::Quiet => self.quiet_uw,
            WifiRegime::Ambient => self.ambient_uw,
            WifiRegime::Burst => self.burst_uw,
        }
    }

    fn regime_index(regime: WifiRegime) -> usize {
        match regime {
            WifiRegime::Quiet => 0,
            WifiRegime::Ambient => 1,
            WifiRegime::Burst => 2,
        }
    }

    /// Geometric dwell with the configured mean (≥ 1 sample).
    fn sample_dwell(&self, rng: &mut StdRng, regime: WifiRegime) -> u64 {
        let mean = self.mean_dwell[Self::regime_index(regime)].max(1.0);
        let p = 1.0 / mean;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let dwell = (u.ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln()).ceil();
        dwell.max(1.0) as u64
    }

    fn next_regime(&self, rng: &mut StdRng, from: WifiRegime) -> WifiRegime {
        let row = &self.transitions[Self::regime_index(from)];
        let mut off_diag: Vec<(WifiRegime, f64)> = WifiRegime::ALL
            .into_iter()
            .zip(row.iter().copied())
            .filter(|&(to, _)| to != from)
            .collect();
        let total = sum_ordered(off_diag.iter().map(|&(_, w)| w));
        if total <= 0.0 {
            // Degenerate row: fall back to uniform choice.
            for entry in &mut off_diag {
                entry.1 = 1.0;
            }
        }
        let total = sum_ordered(off_diag.iter().map(|&(_, w)| w));
        let mut pick = rng.gen::<f64>() * total;
        for (to, w) in off_diag {
            pick -= w;
            if pick <= 0.0 {
                return to;
            }
        }
        from // unreachable in practice; keep the compiler happy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let model = WifiOfficeModel::default();
        let a = model.generate(99, SimDuration::from_secs(30));
        let b = model.generate(99, SimDuration::from_secs(30));
        assert_eq!(a, b);
        let c = model.generate(100, SimDuration::from_secs(30));
        assert_ne!(a, c);
    }

    #[test]
    fn mean_power_is_in_calibrated_band() {
        // Long trace so the Markov chain mixes. The naive-policy failure
        // shape requires the mean to sit in the tens of µW.
        let trace = WifiOfficeModel::default().generate(1, SimDuration::from_secs(3_600));
        let mean = trace.mean_power().as_microwatts();
        assert!(
            (25.0..110.0).contains(&mean),
            "mean {mean} uW outside calibrated band"
        );
    }

    #[test]
    fn trace_is_bursty() {
        let trace = WifiOfficeModel::default().generate(2, SimDuration::from_secs(1_800));
        let stats = trace.stats();
        assert!(stats.burstiness() > 0.8, "cv = {}", stats.burstiness());
        assert!(stats.max().as_microwatts() > 3.0 * stats.mean().as_microwatts());
    }

    #[test]
    fn rich_office_outharvests_sparse() {
        let dur = SimDuration::from_secs(1_800);
        let rich = WifiOfficeModel::rich_office().generate(3, dur);
        let sparse = WifiOfficeModel::sparse_office().generate(3, dur);
        assert!(rich.mean_power() > sparse.mean_power() * 2.0);
    }

    #[test]
    fn samples_are_non_negative_and_cover_duration() {
        let model = WifiOfficeModel::default();
        let trace = model.generate(4, SimDuration::from_secs(10));
        assert_eq!(trace.len() as u64, 10_000 / model.interval.as_millis());
        assert!(trace.samples_microwatts().iter().all(|&s| s >= 0.0));
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn rejects_bad_jitter() {
        let model = WifiOfficeModel {
            jitter: 1.5,
            ..WifiOfficeModel::default()
        };
        let _ = model.generate(0, SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_tiny_duration() {
        let _ = WifiOfficeModel::default().generate(0, SimDuration::from_micros(10));
    }

    #[test]
    fn degenerate_transition_row_falls_back_to_uniform() {
        let model = WifiOfficeModel {
            transitions: [[0.0; 3]; 3],
            ..WifiOfficeModel::default()
        };
        // Must not panic or loop forever.
        let trace = model.generate(5, SimDuration::from_secs(60));
        assert!(!trace.is_empty());
    }
}

#[cfg(test)]
mod diurnal_tests {
    use super::*;

    #[test]
    fn office_profile_envelope_switches_day_night() {
        let d = DiurnalProfile::office();
        assert_eq!(d.envelope_at(SimDuration::from_secs(3_600)), 1.0);
        assert_eq!(d.envelope_at(SimDuration::from_secs(12 * 3_600)), 0.1);
        // Wraps into the second day.
        assert_eq!(d.envelope_at(SimDuration::from_secs(25 * 3_600)), 1.0);
    }

    #[test]
    fn diurnal_trace_harvests_less_at_night() {
        let day = SimDuration::from_secs(200);
        let model = WifiOfficeModel::default().with_diurnal(DiurnalProfile {
            period: day,
            day_fraction: 0.5,
            night_scale: 0.05,
        });
        let trace = model.generate(3, day);
        let n = trace.len();
        let samples = trace.samples_microwatts();
        let day_mean: f64 = samples[..n / 2].iter().sum::<f64>() / (n / 2) as f64;
        let night_mean: f64 = samples[n / 2..].iter().sum::<f64>() / (n - n / 2) as f64;
        assert!(
            night_mean < day_mean * 0.3,
            "day {day_mean} vs night {night_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "diurnal period")]
    fn degenerate_profile_panics() {
        let d = DiurnalProfile {
            period: SimDuration::ZERO,
            day_fraction: 0.5,
            night_scale: 0.1,
        };
        let _ = d.envelope_at(SimDuration::ZERO);
    }
}
