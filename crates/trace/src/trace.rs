//! Fixed-interval power traces with exact piecewise-constant integration.

use crate::error::TraceError;
use crate::stats::TraceStats;
use origin_types::{sum_ordered, Energy, Power, SimDuration, SimTime};

/// A power time-series sampled at a fixed interval.
///
/// Samples are interpreted as *piecewise constant*: sample `i` is the power
/// held over `[i * dt, (i + 1) * dt)`. Integration over arbitrary spans is
/// exact under this interpretation, which keeps the simulator's energy
/// accounting deterministic and order-independent.
///
/// ```
/// use origin_trace::PowerTrace;
/// use origin_types::{Power, SimDuration, SimTime};
///
/// let trace = PowerTrace::from_microwatts(
///     vec![100.0, 0.0, 50.0],
///     SimDuration::from_millis(100),
/// )?;
/// // 100uW for 100ms = 10uJ, then 0, then 50uW for 100ms = 5uJ.
/// let e = trace.energy_between(SimTime::ZERO, SimTime::from_millis(300));
/// assert!((e.as_microjoules() - 15.0).abs() < 1e-9);
/// # Ok::<(), origin_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    samples_uw: Vec<f64>,
    interval: SimDuration,
}

impl PowerTrace {
    /// Builds a trace from µW samples at the given interval.
    ///
    /// # Errors
    ///
    /// * [`TraceError::EmptyTrace`] when `samples_uw` is empty.
    /// * [`TraceError::ZeroInterval`] when `interval` is zero.
    /// * [`TraceError::InvalidSample`] when any sample is negative or
    ///   non-finite.
    pub fn from_microwatts(
        samples_uw: Vec<f64>,
        interval: SimDuration,
    ) -> Result<Self, TraceError> {
        if samples_uw.is_empty() {
            return Err(TraceError::EmptyTrace);
        }
        if interval.is_zero() {
            return Err(TraceError::ZeroInterval);
        }
        for (index, &uw) in samples_uw.iter().enumerate() {
            if !uw.is_finite() || uw < 0.0 {
                return Err(TraceError::InvalidSample {
                    index,
                    microwatts: uw,
                });
            }
        }
        Ok(Self {
            samples_uw,
            interval,
        })
    }

    /// The sampling interval.
    #[must_use]
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples_uw.len()
    }

    /// Whether the trace has no samples (never true for a constructed trace).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples_uw.is_empty()
    }

    /// Total covered duration (`len * interval`).
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.interval * self.samples_uw.len() as u64
    }

    /// Raw µW samples.
    #[must_use]
    pub fn samples_microwatts(&self) -> &[f64] {
        &self.samples_uw
    }

    /// Instantaneous power at `t` (piecewise constant; clamps past the end
    /// to the final sample).
    #[must_use]
    pub fn power_at(&self, t: SimTime) -> Power {
        let idx = (t.as_micros() / self.interval.as_micros()) as usize;
        let idx = idx.min(self.samples_uw.len() - 1);
        Power::from_microwatts(self.samples_uw[idx])
    }

    /// Exact energy delivered over `[from, to)` under the piecewise-constant
    /// interpretation. Times past the end of the trace contribute at the
    /// final sample's power (see [`TraceSource::looping`] for wraparound
    /// semantics instead).
    ///
    /// Returns zero when `to <= from`.
    ///
    /// [`TraceSource::looping`]: crate::TraceSource::looping
    #[must_use]
    pub fn energy_between(&self, from: SimTime, to: SimTime) -> Energy {
        if to <= from {
            return Energy::ZERO;
        }
        let dt_us = self.interval.as_micros();
        let mut total_uj = 0.0;
        let mut cursor = from.as_micros();
        let end = to.as_micros();
        while cursor < end {
            let idx = ((cursor / dt_us) as usize).min(self.samples_uw.len() - 1);
            // End of the sample bucket containing `cursor`, or the end of the
            // requested span, whichever comes first. The final bucket extends
            // to infinity (clamp semantics).
            let bucket_end = if idx + 1 >= self.samples_uw.len() {
                end
            } else {
                (((cursor / dt_us) + 1) * dt_us).min(end)
            };
            let span_s = (bucket_end - cursor) as f64 / 1e6;
            total_uj += self.samples_uw[idx] * span_s;
            cursor = bucket_end;
        }
        Energy::from_microjoules(total_uj)
    }

    /// Mean power over the whole trace.
    ///
    /// Baseline-2's pruning budget is "the average harvested power budget
    /// from our harvesting trace" (Section IV-C) — this is that number.
    #[must_use]
    pub fn mean_power(&self) -> Power {
        let sum = sum_ordered(self.samples_uw.iter().copied());
        Power::from_microwatts(sum / self.samples_uw.len() as f64)
    }

    /// Summary statistics over the samples.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_samples(&self.samples_uw)
    }

    /// A new trace with every sample multiplied by `factor`.
    ///
    /// Used to model location-dependent harvest efficiency (a chest-mounted
    /// antenna sees different incident RF than an ankle).
    ///
    /// # Panics
    ///
    /// Panics when `factor` is negative or non-finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> PowerTrace {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        PowerTrace {
            samples_uw: self.samples_uw.iter().map(|&s| s * factor).collect(),
            interval: self.interval,
        }
    }

    /// A contiguous sub-trace covering `[from, from + len)` samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::SliceOutOfRange`] when the range exceeds the
    /// trace, and [`TraceError::EmptyTrace`] when `len` is zero.
    pub fn slice(&self, from: usize, len: usize) -> Result<PowerTrace, TraceError> {
        if len == 0 {
            return Err(TraceError::EmptyTrace);
        }
        let end = from.checked_add(len).ok_or(TraceError::SliceOutOfRange)?;
        if end > self.samples_uw.len() {
            return Err(TraceError::SliceOutOfRange);
        }
        Ok(PowerTrace {
            samples_uw: self.samples_uw[from..end].to_vec(),
            interval: self.interval,
        })
    }

    /// Resamples to a new interval by exact energy-preserving averaging.
    ///
    /// The resampled trace delivers the same energy over any span aligned to
    /// both intervals.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ZeroInterval`] when `new_interval` is zero.
    pub fn resampled(&self, new_interval: SimDuration) -> Result<PowerTrace, TraceError> {
        if new_interval.is_zero() {
            return Err(TraceError::ZeroInterval);
        }
        let total = self.duration();
        let n = total.as_micros().div_ceil(new_interval.as_micros());
        let n = n.max(1);
        let mut samples = Vec::with_capacity(n as usize);
        for i in 0..n {
            let from = SimTime::from_micros(i * new_interval.as_micros());
            let to = SimTime::from_micros((i + 1) * new_interval.as_micros());
            let e = self.energy_between(from, to);
            samples.push(e.as_microjoules() / new_interval.as_secs_f64());
        }
        PowerTrace::from_microwatts(samples, new_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(samples: Vec<f64>, ms: u64) -> PowerTrace {
        PowerTrace::from_microwatts(samples, SimDuration::from_millis(ms)).unwrap()
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            PowerTrace::from_microwatts(vec![], SimDuration::from_millis(1)),
            Err(TraceError::EmptyTrace)
        ));
        assert!(matches!(
            PowerTrace::from_microwatts(vec![1.0], SimDuration::ZERO),
            Err(TraceError::ZeroInterval)
        ));
        assert!(matches!(
            PowerTrace::from_microwatts(vec![1.0, -2.0], SimDuration::from_millis(1)),
            Err(TraceError::InvalidSample { index: 1, .. })
        ));
    }

    #[test]
    fn integration_is_exact_for_aligned_spans() {
        let t = trace(vec![100.0, 0.0, 50.0], 100);
        let e = t.energy_between(SimTime::ZERO, SimTime::from_millis(300));
        assert!((e.as_microjoules() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn integration_handles_partial_buckets() {
        let t = trace(vec![100.0, 0.0], 100);
        // 50ms inside the first bucket = 5uJ.
        let e = t.energy_between(SimTime::from_millis(25), SimTime::from_millis(75));
        assert!((e.as_microjoules() - 5.0).abs() < 1e-9);
        // Straddle the boundary: 50ms at 100uW + 50ms at 0uW.
        let e = t.energy_between(SimTime::from_millis(50), SimTime::from_millis(150));
        assert!((e.as_microjoules() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn integration_clamps_past_end() {
        let t = trace(vec![100.0], 100);
        let e = t.energy_between(SimTime::from_millis(100), SimTime::from_millis(200));
        assert!((e.as_microjoules() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_inverted_spans_are_zero() {
        let t = trace(vec![100.0], 100);
        assert_eq!(t.energy_between(SimTime::ZERO, SimTime::ZERO), Energy::ZERO);
        assert_eq!(
            t.energy_between(SimTime::from_millis(50), SimTime::ZERO),
            Energy::ZERO
        );
    }

    #[test]
    fn mean_power_and_power_at() {
        let t = trace(vec![10.0, 30.0], 100);
        assert!((t.mean_power().as_microwatts() - 20.0).abs() < 1e-12);
        assert_eq!(t.power_at(SimTime::ZERO).as_microwatts(), 10.0);
        assert_eq!(t.power_at(SimTime::from_millis(150)).as_microwatts(), 30.0);
        assert_eq!(t.power_at(SimTime::from_millis(900)).as_microwatts(), 30.0);
    }

    #[test]
    fn scaled_multiplies_samples() {
        let t = trace(vec![10.0, 20.0], 100).scaled(1.5);
        assert_eq!(t.samples_microwatts(), &[15.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_negative() {
        let _ = trace(vec![10.0], 100).scaled(-1.0);
    }

    #[test]
    fn slice_bounds() {
        let t = trace(vec![1.0, 2.0, 3.0, 4.0], 100);
        let s = t.slice(1, 2).unwrap();
        assert_eq!(s.samples_microwatts(), &[2.0, 3.0]);
        assert!(matches!(t.slice(3, 2), Err(TraceError::SliceOutOfRange)));
        assert!(matches!(t.slice(0, 0), Err(TraceError::EmptyTrace)));
        assert!(matches!(
            t.slice(usize::MAX, 2),
            Err(TraceError::SliceOutOfRange)
        ));
    }

    #[test]
    fn resample_preserves_energy() {
        let t = trace(vec![100.0, 0.0, 50.0, 50.0], 100);
        let r = t.resampled(SimDuration::from_millis(200)).unwrap();
        assert_eq!(r.len(), 2);
        let span = (SimTime::ZERO, SimTime::from_millis(400));
        let e0 = t.energy_between(span.0, span.1).as_microjoules();
        let e1 = r.energy_between(span.0, span.1).as_microjoules();
        assert!((e0 - e1).abs() < 1e-9);
    }

    #[test]
    fn resample_upsamples_too() {
        let t = trace(vec![100.0], 200);
        let r = t.resampled(SimDuration::from_millis(100)).unwrap();
        assert_eq!(r.len(), 2);
        assert!((r.samples_microwatts()[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn duration_is_len_times_interval() {
        let t = trace(vec![1.0; 7], 250);
        assert_eq!(t.duration(), SimDuration::from_millis(1750));
        assert_eq!(t.len(), 7);
        assert!(!t.is_empty());
    }
}
