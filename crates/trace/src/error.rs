//! Error type for trace construction and I/O.

use core::fmt;

/// Errors produced by trace construction, resampling and CSV I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// A trace was constructed with no samples.
    EmptyTrace,
    /// A trace was constructed with a zero sample interval.
    ZeroInterval,
    /// A sample value was negative or non-finite.
    InvalidSample {
        /// Index of the offending sample.
        index: usize,
        /// The offending value in microwatts.
        microwatts: f64,
    },
    /// A requested slice lies (partly) outside the trace.
    SliceOutOfRange,
    /// A CSV line could not be parsed.
    ParseLine {
        /// 1-based line number.
        line: usize,
        /// The unparsable content.
        content: String,
    },
    /// Underlying I/O failure while reading or writing a trace file.
    Io(std::io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::EmptyTrace => write!(f, "power trace must contain at least one sample"),
            TraceError::ZeroInterval => write!(f, "power trace sample interval must be non-zero"),
            TraceError::InvalidSample { index, microwatts } => write!(
                f,
                "sample {index} is invalid ({microwatts} uW); samples must be finite and non-negative"
            ),
            TraceError::SliceOutOfRange => write!(f, "requested slice exceeds trace bounds"),
            TraceError::ParseLine { line, content } => {
                write!(f, "cannot parse trace CSV line {line}: `{content}`")
            }
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let variants: Vec<TraceError> = vec![
            TraceError::EmptyTrace,
            TraceError::ZeroInterval,
            TraceError::InvalidSample {
                index: 3,
                microwatts: -1.0,
            },
            TraceError::SliceOutOfRange,
            TraceError::ParseLine {
                line: 2,
                content: "x".into(),
            },
            TraceError::Io(std::io::Error::other("boom")),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = TraceError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
        assert!(TraceError::EmptyTrace.source().is_none());
    }
}
