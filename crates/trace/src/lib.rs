//! Power-trace substrate for the Origin reproduction.
//!
//! The paper drives its evaluation with "a real power trace harvested from a
//! WiFi source while doing various day to day tasks in an office
//! environment" (Section IV-A, from the ReSiRCa setup). That trace is not
//! publicly available, so this crate provides:
//!
//! * [`PowerTrace`] — a fixed-interval µW time series with exact
//!   integration, slicing, resampling and statistics;
//! * [`WifiOfficeModel`] — a seeded Markov-modulated synthetic generator
//!   whose scarcity/burstiness is calibrated so the naive and round-robin
//!   completion fractions of Fig. 1 reproduce;
//! * [`PowerSource`] — the trait the energy substrate consumes, with
//!   constant, scaled and trace-backed implementations.
//!
//! # Examples
//!
//! ```
//! use origin_trace::{PowerSource, TraceSource, WifiOfficeModel};
//! use origin_types::{SimDuration, SimTime};
//!
//! let trace = WifiOfficeModel::default().generate(42, SimDuration::from_secs(60));
//! let source = TraceSource::looping(trace);
//! let first_second = source.energy_between(SimTime::ZERO, SimTime::from_millis(1000));
//! assert!(first_second.as_microjoules() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
mod io;
mod source;
mod stats;
mod trace;
mod wifi;

pub use error::TraceError;
pub use io::{read_trace_csv, write_trace_csv};
pub use source::{ConstantPower, PowerSource, ScaledSource, TraceSource};
pub use stats::TraceStats;
pub use trace::PowerTrace;
pub use wifi::{DiurnalProfile, WifiOfficeModel, WifiRegime};
