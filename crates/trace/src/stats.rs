//! Summary statistics over trace samples.

use origin_types::{sum_ordered, Power};

/// Summary statistics of a power trace, used to calibrate synthetic traces
/// against the shapes reported for the ReSiRCa office trace and to derive
/// pruning budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    mean: Power,
    min: Power,
    max: Power,
    std_dev: Power,
    p50: Power,
    p95: Power,
    /// Fraction of samples that are (near) zero — the "power emergency"
    /// density the NVP must ride through.
    zero_fraction: f64,
}

impl TraceStats {
    /// Computes statistics from raw µW samples.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty (traces are never empty by
    /// construction).
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty trace");
        let n = samples.len() as f64;
        let mean = sum_ordered(samples.iter().copied()) / n;
        let var = sum_ordered(samples.iter().map(|s| (s - mean).powi(2))) / n;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let pct = |q: f64| -> f64 {
            let pos = q * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        let zero_fraction = samples.iter().filter(|&&s| s < 1e-9).count() as f64 / n;
        Self {
            mean: Power::from_microwatts(mean),
            min: Power::from_microwatts(sorted[0]),
            max: Power::from_microwatts(*sorted.last().expect("non-empty")),
            std_dev: Power::from_microwatts(var.sqrt()),
            p50: Power::from_microwatts(pct(0.5)),
            p95: Power::from_microwatts(pct(0.95)),
            zero_fraction,
        }
    }

    /// Mean power.
    #[must_use]
    pub fn mean(&self) -> Power {
        self.mean
    }

    /// Minimum sample.
    #[must_use]
    pub fn min(&self) -> Power {
        self.min
    }

    /// Maximum sample.
    #[must_use]
    pub fn max(&self) -> Power {
        self.max
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> Power {
        self.std_dev
    }

    /// Median power.
    #[must_use]
    pub fn median(&self) -> Power {
        self.p50
    }

    /// 95th-percentile power.
    #[must_use]
    pub fn p95(&self) -> Power {
        self.p95
    }

    /// Fraction of samples below 1e-9 µW.
    #[must_use]
    pub fn zero_fraction(&self) -> f64 {
        self.zero_fraction
    }

    /// Coefficient of variation (σ/µ); ≳1 indicates the bursty regime the
    /// paper calls "fickle". Zero-mean traces report 0.
    #[must_use]
    pub fn burstiness(&self) -> f64 {
        let mean = self.mean.as_microwatts();
        if mean <= 0.0 {
            0.0
        } else {
            self.std_dev.as_microwatts() / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_stats() {
        let s = TraceStats::from_samples(&[50.0; 10]);
        assert!((s.mean().as_microwatts() - 50.0).abs() < 1e-12);
        assert_eq!(s.min(), s.max());
        assert!(s.std_dev().as_microwatts() < 1e-12);
        assert_eq!(s.zero_fraction(), 0.0);
        assert!(s.burstiness() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = TraceStats::from_samples(&[0.0, 10.0, 20.0, 30.0, 40.0]);
        assert!((s.median().as_microwatts() - 20.0).abs() < 1e-12);
        assert!((s.p95().as_microwatts() - 38.0).abs() < 1e-9);
        assert!((s.zero_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn bursty_trace_has_high_cv() {
        let mut samples = vec![0.0; 90];
        samples.extend(vec![500.0; 10]);
        let s = TraceStats::from_samples(&samples);
        assert!(s.burstiness() > 2.0, "cv = {}", s.burstiness());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = TraceStats::from_samples(&[]);
    }

    #[test]
    fn zero_mean_burstiness_is_zero() {
        let s = TraceStats::from_samples(&[0.0, 0.0]);
        assert_eq!(s.burstiness(), 0.0);
        assert_eq!(s.zero_fraction(), 1.0);
    }
}
