//! Property tests for power traces and sources.

use origin_trace::{PowerSource, PowerTrace, ScaledSource, TraceSource, WifiOfficeModel};
use origin_types::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = PowerTrace> {
    (
        proptest::collection::vec(0.0f64..500.0, 1..200),
        1u64..1_000,
    )
        .prop_map(|(samples, interval_ms)| {
            PowerTrace::from_microwatts(samples, SimDuration::from_millis(interval_ms))
                .expect("valid by construction")
        })
}

proptest! {
    #[test]
    fn integration_is_additive(trace in arb_trace(), a in 0u64..100_000, b in 0u64..100_000, c in 0u64..100_000) {
        let mut points = [a, b, c];
        points.sort_unstable();
        let [a, b, c] = points.map(SimTime::from_micros);
        let whole = trace.energy_between(a, c).as_microjoules();
        let split = trace.energy_between(a, b).as_microjoules()
            + trace.energy_between(b, c).as_microjoules();
        prop_assert!((whole - split).abs() < 1e-6, "whole {whole} vs split {split}");
    }

    #[test]
    fn integration_is_monotone_in_span(trace in arb_trace(), a in 0u64..100_000, d1 in 0u64..50_000, d2 in 0u64..50_000) {
        let start = SimTime::from_micros(a);
        let shorter = trace.energy_between(start, SimTime::from_micros(a + d1.min(d2)));
        let longer = trace.energy_between(start, SimTime::from_micros(a + d1.max(d2)));
        prop_assert!(longer >= shorter);
    }

    #[test]
    fn stats_are_ordered(trace in arb_trace()) {
        let s = trace.stats();
        prop_assert!(s.min() <= s.median());
        prop_assert!(s.median() <= s.max());
        prop_assert!(s.min() <= s.mean() && s.mean() <= s.max());
        prop_assert!((0.0..=1.0).contains(&s.zero_fraction()));
    }

    #[test]
    fn scaling_scales_energy(trace in arb_trace(), factor in 0.0f64..10.0, span_ms in 1u64..10_000) {
        let source = ScaledSource::new(TraceSource::new(trace.clone()), factor);
        let base = TraceSource::new(trace);
        let to = SimTime::from_millis(span_ms);
        let scaled = source.energy_between(SimTime::ZERO, to).as_microjoules();
        let plain = base.energy_between(SimTime::ZERO, to).as_microjoules() * factor;
        prop_assert!((scaled - plain).abs() < 1e-6);
    }

    #[test]
    fn looping_source_is_additive(trace in arb_trace(), a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        let src = TraceSource::looping(trace);
        let mut points = [a, b, c];
        points.sort_unstable();
        let [a, b, c] = points.map(SimTime::from_micros);
        let whole = src.energy_between(a, c).as_microjoules();
        let split = src.energy_between(a, b).as_microjoules()
            + src.energy_between(b, c).as_microjoules();
        prop_assert!((whole - split).abs() < 1e-6, "whole {whole} vs split {split}");
    }

    #[test]
    fn resampling_preserves_total_energy(trace in arb_trace(), new_interval_ms in 1u64..2_000) {
        let resampled = trace.resampled(SimDuration::from_millis(new_interval_ms)).expect("valid");
        // Compare total energy over the common horizon covered by both.
        let horizon = trace.duration().min(resampled.duration());
        let end = SimTime::from_micros(horizon.as_micros());
        let before = trace.energy_between(SimTime::ZERO, end).as_microjoules();
        let after = resampled.energy_between(SimTime::ZERO, end).as_microjoules();
        // Clamp semantics at the tail allow a one-bucket discrepancy.
        let tolerance = 500.0 * (new_interval_ms.max(trace.interval().as_millis()) as f64) / 1_000.0 + 1e-6;
        prop_assert!((before - after).abs() <= tolerance, "{before} vs {after}");
    }

    #[test]
    fn wifi_generation_is_deterministic_and_positive(seed in 0u64..1_000, secs in 1u64..120) {
        let model = WifiOfficeModel::default();
        let a = model.generate(seed, SimDuration::from_secs(secs));
        let b = model.generate(seed, SimDuration::from_secs(secs));
        prop_assert_eq!(&a, &b);
        prop_assert!(a.samples_microwatts().iter().all(|&s| s >= 0.0));
    }
}
